//! Serving benchmark: batched `PREDICT` throughput and latency under
//! concurrent sessions, cold vs warm cache.
//!
//! Accounting: the engine is a simulator, so throughput is reported in
//! predictions per **simulated** second — each session is charged its own
//! sequential scan I/O plus inference compute on the engine's cost model,
//! and the serving window for N concurrent sessions is the *maximum*
//! per-session busy time (sessions are independent backends on
//! independent device channels, the read-mostly regime the lock-free
//! model cache is built for, so aggregate throughput scales with the
//! session count). Per-batch wall-clock latencies are real host timings
//! and are reported as p50/p99 without any simulation applied. Cold vs
//! warm compares the serving subsystem's own model cache: pinning a
//! version that is not resident (fetched from the durable store and
//! published) against the repeat request that pins the resident `Arc`.
//!
//! Every concurrent run's predictions are compared bit-for-bit against a
//! serial reference — the versioned cache pins one immutable model per
//! run, so concurrency must never change a single prediction.
//!
//! Writes `results/serving.{tsv,json}` plus the root-level
//! `BENCH_serving.json` artifact (directory override: `CORGI_BENCH_ROOT`).
//! `CORGI_SERVING_TUPLES` / `CORGI_SERVING_RUNS` /
//! `CORGI_SERVING_BATCH_ROWS` shrink the run for CI smoke tests.

use crate::report::Report;
use corgipile_data::{DatasetSpec, Order};
use corgipile_db::{Database, PredictSummary, ServeOptions};
use corgipile_storage::{SimDevice, Table};
use std::sync::Arc;

/// One concurrency level of the serving sweep.
#[derive(Debug, Clone)]
pub struct ServingRun {
    /// Concurrent predictor sessions.
    pub sessions: usize,
    /// Total predictions across all sessions and repeats.
    pub predictions: u64,
    /// Serving window: max per-session simulated busy seconds.
    pub sim_window_seconds: f64,
    /// Predictions per simulated second over the window.
    pub predictions_per_sec: f64,
    /// Real per-batch wall latency, median, milliseconds.
    pub wall_p50_ms: f64,
    /// Real per-batch wall latency, 99th percentile, milliseconds.
    pub wall_p99_ms: f64,
    /// Every session's every run matched the serial reference bit-for-bit.
    pub bit_identical: bool,
}

/// Cold-vs-warm **model cache** comparison for a single session: a cold
/// request pins a version that is not resident (recovery only republishes
/// the latest version per name), so the engine must fetch it from the
/// durable store and publish it; the warm repeat pins the now-resident
/// `Arc` without touching storage.
#[derive(Debug, Clone, Copy)]
pub struct CacheComparison {
    /// Wall milliseconds for the cold request (store fetch + publish + scan).
    pub cold_wall_ms: f64,
    /// Wall milliseconds for the warm repeat (cache pin + scan).
    pub warm_wall_ms: f64,
    /// The cold request really missed the cache.
    pub cold_miss: bool,
    /// The warm repeat really hit it.
    pub warm_hit: bool,
}

/// Fused vs interpreted `PREDICT` batch execution for one warm session:
/// the same scan served through the fused scan→predict pipeline
/// (`fuse = 1`, batched compute accounting) and through the interpreted
/// operator tree (`fuse = 0`, per-tuple dispatch charges).
#[derive(Debug, Clone, Copy)]
pub struct FusedServing {
    /// Predictions per run (both paths serve the same rows).
    pub predictions: u64,
    /// Simulated inference compute seconds, fused pipeline.
    pub fused_compute_seconds: f64,
    /// Simulated inference compute seconds, interpreted tree.
    pub interp_compute_seconds: f64,
    /// The two paths produced bit-identical prediction vectors.
    pub bit_identical: bool,
}

impl FusedServing {
    /// Sim-compute throughput speedup of fused over interpreted PREDICT.
    pub fn speedup(&self) -> f64 {
        self.interp_compute_seconds / self.fused_compute_seconds.max(1e-12)
    }
}

fn clustered(n: usize) -> Table {
    DatasetSpec::higgs_like(n)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(1)
        .unwrap()
}

const TRAIN_SQL: &str = "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.05, \
                         max_epoch_num = 2, seed = 7, model_name = m";

fn serving_engine(table: &Table, pool_bytes: usize) -> Arc<Database> {
    let db = if pool_bytes > 0 {
        Database::with_shared_buffers(SimDevice::hdd_scaled(1000.0, 0), pool_bytes)
    } else {
        Database::new(SimDevice::hdd_scaled(1000.0, 0))
    };
    db.register_table("higgs", table.clone());
    db.connect().execute(TRAIN_SQL).expect("training runs");
    db
}

fn serve_once(db: &Arc<Database>, batch_rows: usize) -> PredictSummary {
    db.connect()
        .predict_batch(
            "higgs",
            "m",
            ServeOptions {
                batch_rows,
                ..ServeOptions::default()
            },
        )
        .expect("serving runs")
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank] * 1e3
}

/// Sweep concurrent session counts over one warm engine per level.
pub fn measure_serving(
    n_tuples: usize,
    runs_per_session: usize,
    batch_rows: usize,
    session_counts: &[usize],
) -> Vec<ServingRun> {
    let table = clustered(n_tuples);
    session_counts
        .iter()
        .map(|&sessions| {
            let db = serving_engine(&table, 64 << 20);
            // Serial reference run: every concurrent session's bits must
            // match it exactly.
            let reference = serve_once(&db, batch_rows).predictions;

            let per_session: Vec<(f64, Vec<f64>, bool)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..sessions)
                    .map(|_| {
                        let db = Arc::clone(&db);
                        let reference = &reference;
                        scope.spawn(move || {
                            let mut sim = 0.0f64;
                            let mut walls = Vec::new();
                            let mut identical = true;
                            for _ in 0..runs_per_session {
                                let p = serve_once(&db, batch_rows);
                                sim += p.sim_seconds();
                                walls.extend(p.batch_wall_seconds);
                                identical &= &p.predictions == reference;
                            }
                            (sim, walls, identical)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            let sim_window_seconds = per_session
                .iter()
                .map(|(sim, _, _)| *sim)
                .fold(0.0f64, f64::max);
            let predictions = (sessions * runs_per_session * n_tuples) as u64;
            let mut walls: Vec<f64> = per_session
                .iter()
                .flat_map(|(_, w, _)| w.iter().copied())
                .collect();
            walls.sort_by(f64::total_cmp);
            ServingRun {
                sessions,
                predictions,
                sim_window_seconds,
                predictions_per_sec: predictions as f64 / sim_window_seconds.max(1e-12),
                wall_p50_ms: quantile_ms(&walls, 0.5),
                wall_p99_ms: quantile_ms(&walls, 0.99),
                bit_identical: per_session.iter().all(|(_, _, ok)| *ok),
            }
        })
        .collect()
}

/// Cold (version absent from the model cache, fetched from the durable
/// store) vs warm (resident) single-session request.
pub fn measure_cache(n_tuples: usize, batch_rows: usize) -> CacheComparison {
    let table = clustered(n_tuples);
    let dir = std::env::temp_dir().join(format!("corgi_bench_serving_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        // Two durable versions; v2 ends up active.
        let db =
            Database::with_model_store(SimDevice::hdd_scaled(1000.0, 0), 64 << 20, &dir).unwrap();
        db.register_table("higgs", table.clone());
        let mut s = db.connect();
        for seed in [7, 8] {
            s.execute(&format!(
                "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.05, \
                 max_epoch_num = 2, seed = {seed}, model_name = m, durable = 1"
            ))
            .expect("durable training runs");
        }
    }
    // Restart: recovery republishes only the latest version, so pinning
    // version 1 is a genuine cache miss served through the store.
    let db = Database::with_model_store(SimDevice::hdd_scaled(1000.0, 0), 64 << 20, &dir).unwrap();
    db.register_table("higgs", table);
    let mut s = db.connect();
    let mut pinned = |_| {
        let t = std::time::Instant::now();
        let p = s
            .predict_batch(
                "higgs",
                "m",
                ServeOptions {
                    version: Some(1),
                    batch_rows,
                    ..ServeOptions::default()
                },
            )
            .expect("version-pinned serving runs");
        (t.elapsed().as_secs_f64() * 1e3, p)
    };
    let (cold_wall_ms, cold) = pinned(());
    let (warm_wall_ms, warm) = pinned(());
    std::fs::remove_dir_all(&dir).ok();
    CacheComparison {
        cold_wall_ms,
        warm_wall_ms,
        cold_miss: !cold.cache_hit,
        warm_hit: warm.cache_hit,
    }
}

/// Fused vs interpreted PREDICT batch throughput on one warm engine.
pub fn measure_fused(n_tuples: usize, batch_rows: usize) -> FusedServing {
    let table = clustered(n_tuples);
    let db = serving_engine(&table, 64 << 20);
    let serve = |fuse: bool| {
        db.connect()
            .predict_batch(
                "higgs",
                "m",
                ServeOptions {
                    batch_rows,
                    fuse,
                    ..ServeOptions::default()
                },
            )
            .expect("serving runs")
    };
    let fused = serve(true);
    let interp = serve(false);
    FusedServing {
        predictions: fused.rows,
        fused_compute_seconds: fused.compute_seconds,
        interp_compute_seconds: interp.compute_seconds,
        bit_identical: fused.predictions == interp.predictions
            && fused.rows == interp.rows
            && fused.metric == interp.metric,
    }
}

/// Speedup of the largest session count over single-session throughput.
pub fn scaling_speedup(runs: &[ServingRun]) -> f64 {
    let at = |n: usize| {
        runs.iter()
            .filter(|r| r.sessions == n)
            .map(|r| r.predictions_per_sec)
            .fold(0.0f64, f64::max)
    };
    let base = at(1);
    let top = runs.iter().map(|r| r.sessions).max().map(at).unwrap_or(0.0);
    if base <= 0.0 {
        0.0
    } else {
        top / base
    }
}

/// Render the root-level `BENCH_serving.json` artifact.
pub fn render_bench_json(
    runs: &[ServingRun],
    cache: CacheComparison,
    fused: FusedServing,
) -> String {
    let mut out = String::from("{\n  \"id\": \"serving\",\n  \"sessions\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"sessions\": {}, \"predictions\": {}, \
             \"sim_window_seconds\": {:.6}, \"predictions_per_sec\": {:.1}, \
             \"wall_p50_ms\": {:.4}, \"wall_p99_ms\": {:.4}, \
             \"bit_identical\": {}}}{}\n",
            r.sessions,
            r.predictions,
            r.sim_window_seconds,
            r.predictions_per_sec,
            r.wall_p50_ms,
            r.wall_p99_ms,
            r.bit_identical,
            comma,
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"speedup_8v1\": {:.4},\n  \
         \"cache\": {{\"cold_wall_ms\": {:.4}, \"warm_wall_ms\": {:.4}, \
         \"cold_miss\": {}, \"warm_hit\": {}}},\n  \
         \"fused_predict\": {{\"predictions\": {}, \
         \"fused_compute_seconds\": {:.6}, \"interp_compute_seconds\": {:.6}, \
         \"compute_speedup\": {:.4}, \"bit_identical\": {}}},\n  \
         \"bit_identical_all\": {}\n}}",
        scaling_speedup(runs),
        cache.cold_wall_ms,
        cache.warm_wall_ms,
        cache.cold_miss,
        cache.warm_hit,
        fused.predictions,
        fused.fused_compute_seconds,
        fused.interp_compute_seconds,
        fused.speedup(),
        fused.bit_identical,
        runs.iter().all(|r| r.bit_identical) && fused.bit_identical,
    ));
    out
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `serving` experiment: concurrency sweep + cold/warm cache table
/// plus the root JSON artifact.
pub fn serving() {
    let n = env_usize("CORGI_SERVING_TUPLES", 20_000);
    let runs_per_session = env_usize("CORGI_SERVING_RUNS", 3);
    let batch_rows = env_usize("CORGI_SERVING_BATCH_ROWS", 256);
    let runs = measure_serving(n, runs_per_session, batch_rows, &[1, 4, 8]);
    let cache = measure_cache(n.min(8_000), batch_rows);
    let fused = measure_fused(n, batch_rows);

    let mut rep = Report::new(
        "serving",
        "batched PREDICT throughput/latency under concurrent sessions + cold vs warm cache",
        &[
            "sessions",
            "predictions",
            "sim_window_s",
            "pred_per_sim_s",
            "wall_p50_ms",
            "wall_p99_ms",
            "bit_identical",
        ],
    );
    for r in &runs {
        rep.row_strings(vec![
            r.sessions.to_string(),
            r.predictions.to_string(),
            format!("{:.4}", r.sim_window_seconds),
            format!("{:.1}", r.predictions_per_sec),
            format!("{:.4}", r.wall_p50_ms),
            format!("{:.4}", r.wall_p99_ms),
            r.bit_identical.to_string(),
        ]);
    }
    rep.note(format!(
        "model cache: cold version pin (store fetch + publish) {:.4}ms \
         (miss={}) vs warm repeat {:.4}ms (hit={}); scaling {}-session \
         speedup {:.2}x over 1 session",
        cache.cold_wall_ms,
        cache.cold_miss,
        cache.warm_wall_ms,
        cache.warm_hit,
        runs.iter().map(|r| r.sessions).max().unwrap_or(0),
        scaling_speedup(&runs),
    ));
    rep.note(
        "throughput is predictions per *simulated* second (per-session device + \
         inference-compute charges; window = max session busy time); p50/p99 are \
         real per-batch wall timings. Every run is bit-compared to a serial \
         reference through the versioned model cache.",
    );
    rep.note(format!(
        "fused scan→predict pipeline: {:.6}s sim compute vs {:.6}s interpreted \
         ({:.2}x, bit_identical={})",
        fused.fused_compute_seconds,
        fused.interp_compute_seconds,
        fused.speedup(),
        fused.bit_identical,
    ));
    rep.finish();

    let root = std::env::var("CORGI_BENCH_ROOT").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&root).join("BENCH_serving.json");
    match std::fs::write(&path, render_bench_json(&runs, cache, fused) + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_scales_with_sessions_at_smoke_scale() {
        let runs = measure_serving(2_000, 1, 256, &[1, 4]);
        assert!(runs.iter().all(|r| r.bit_identical), "{runs:?}");
        assert!(runs.iter().all(|r| r.predictions_per_sec > 0.0));
        let speedup = scaling_speedup(&runs);
        assert!(
            speedup >= 3.0,
            "4 warm sessions must serve >= 3x one session's throughput, got \
             {speedup:.2}x: {runs:?}"
        );
    }

    #[test]
    fn version_pin_is_cold_once_then_warm() {
        let c = measure_cache(2_000, 256);
        assert!(c.cold_miss, "restart must evict non-latest versions: {c:?}");
        assert!(c.warm_hit, "the repeat must pin the resident Arc: {c:?}");
        assert!(c.cold_wall_ms > 0.0 && c.warm_wall_ms > 0.0);
    }

    #[test]
    fn bench_json_is_well_formed() {
        let runs = vec![
            ServingRun {
                sessions: 1,
                predictions: 100,
                sim_window_seconds: 1.0,
                predictions_per_sec: 100.0,
                wall_p50_ms: 0.2,
                wall_p99_ms: 0.5,
                bit_identical: true,
            },
            ServingRun {
                sessions: 8,
                predictions: 800,
                sim_window_seconds: 1.0,
                predictions_per_sec: 800.0,
                wall_p50_ms: 0.2,
                wall_p99_ms: 0.6,
                bit_identical: true,
            },
        ];
        let json = render_bench_json(
            &runs,
            CacheComparison {
                cold_wall_ms: 2.0,
                warm_wall_ms: 0.5,
                cold_miss: true,
                warm_hit: true,
            },
            FusedServing {
                predictions: 100,
                fused_compute_seconds: 0.1,
                interp_compute_seconds: 0.3,
                bit_identical: true,
            },
        );
        assert!(json.contains("\"speedup_8v1\": 8.0000"));
        assert!(json.contains("\"bit_identical_all\": true"));
        assert!(json.contains("\"cold_miss\": true"));
        assert!(json.contains("\"warm_hit\": true"));
        assert!(json.contains("\"compute_speedup\": 3.0000"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn fused_predict_beats_interpreted_bit_identically() {
        let f = measure_fused(2_000, 256);
        assert!(f.bit_identical, "fused PREDICT diverged: {f:?}");
        assert!(
            f.speedup() >= 1.5,
            "expected >=1.5x PREDICT compute speedup, got {:.2}x: {f:?}",
            f.speedup()
        );
    }
}
