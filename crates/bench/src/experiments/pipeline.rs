//! Pipelined-execution benchmark: serial vs double-buffered epoch time.
//!
//! Measures the real prefetch pipeline (producer thread fills buffer B
//! while the consumer trains on buffer A) against the serial
//! fill-then-train loop, on HDD and SSD profiles plus a calibrated
//! "balanced" profile where per-epoch compute ≈ per-epoch I/O — the regime
//! where double buffering pays the most (§6.3, Figure 13). Also
//! micro-benchmarks the unrolled dense kernels behind the SGD inner loops.
//!
//! Besides the usual `results/pipeline.{tsv,json}` artifacts, this writes
//! `BENCH_pipeline.json` at the repository root (override the directory
//! with `CORGI_BENCH_ROOT`) so the headline speedup is easy to find.
//! `CORGI_PIPELINE_TUPLES` / `CORGI_PIPELINE_EPOCHS` shrink the run for CI
//! smoke tests.

use std::time::Instant;

use crate::common::ExpData;
use crate::report::Report;
use corgipile_core::{CorgiPileConfig, Trainer, TrainerConfig};
use corgipile_data::{DatasetSpec, Order};
use corgipile_ml::{ComputeCostModel, ModelKind};
use corgipile_shuffle::StrategyKind;
use corgipile_storage::{dense_axpy, dense_axpy_scalar, dense_dot, dense_dot_scalar, SimDevice};

/// One side (serial or pipelined) of a profile measurement.
#[derive(Debug, Clone, Copy)]
pub struct RunSide {
    /// Total simulated seconds across all epochs (excl. setup).
    pub sim_seconds: f64,
    /// Wall-clock seconds actually spent training.
    pub wall_seconds: f64,
    /// Summed per-epoch loading seconds.
    pub io_seconds: f64,
    /// Summed per-epoch compute seconds.
    pub compute_seconds: f64,
    /// Tuples consumed per simulated second.
    pub tuples_per_sec: f64,
}

/// Serial vs pipelined measurement on one device profile.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Profile name ("hdd", "ssd", "balanced").
    pub profile: String,
    /// Single-buffer (serial fill-then-train) run.
    pub serial: RunSide,
    /// Double-buffered (prefetch pipeline) run.
    pub pipelined: RunSide,
}

impl PipelineRun {
    /// Simulated-time speedup of the pipelined run.
    pub fn speedup(&self) -> f64 {
        self.serial.sim_seconds / self.pipelined.sim_seconds
    }
}

/// Throughput of one dense-kernel variant.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel name ("dot_scalar", "dot_unrolled", …).
    pub kernel: String,
    /// Vector dimensionality.
    pub dim: usize,
    /// Measured GFLOP/s.
    pub gflops: f64,
}

fn run_side(
    data: &ExpData,
    dev: &mut SimDevice,
    compute: ComputeCostModel,
    epochs: usize,
    double: bool,
) -> RunSide {
    let cfg = TrainerConfig::new(ModelKind::Svm, epochs)
        .with_strategy(StrategyKind::CorgiPile)
        .with_compute(compute)
        .with_corgipile(CorgiPileConfig::default().with_double_buffer(double));
    let start = Instant::now();
    let report = Trainer::new(cfg)
        .train(&data.table, dev, 0x5EED)
        .expect("non-empty table");
    let wall_seconds = start.elapsed().as_secs_f64();
    let sim_seconds: f64 = report.epochs.iter().map(|e| e.epoch_seconds).sum();
    let io_seconds: f64 = report.epochs.iter().map(|e| e.io_seconds).sum();
    let compute_seconds: f64 = report.epochs.iter().map(|e| e.compute_seconds).sum();
    let tuples = data.table.num_tuples() as f64 * epochs as f64;
    RunSide {
        sim_seconds,
        wall_seconds,
        io_seconds,
        compute_seconds,
        tuples_per_sec: tuples / sim_seconds,
    }
}

/// Measure serial vs pipelined training on HDD, SSD, and a balanced
/// profile (HDD timings with the compute model rescaled so per-epoch
/// compute matches per-epoch I/O).
pub fn measure(n_tuples: usize, epochs: usize) -> Vec<PipelineRun> {
    let data = ExpData::build(
        DatasetSpec::higgs_like(n_tuples)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(8 << 10),
        0x5EED,
        31,
    );
    let base = ComputeCostModel::in_db_core();
    // The balanced profile runs cache-less, so every epoch pays the same
    // I/O — otherwise OS-cache warming makes epoch 1 I/O-bound and the
    // rest compute-bound, and no single compute model balances them all.
    let raw_hdd = || {
        SimDevice::new(
            corgipile_storage::DeviceProfile::hdd_scaled(data.device_scale()),
            corgipile_storage::CacheConfig::disabled(),
        )
    };
    let mut runs = Vec::new();
    for profile in ["hdd", "ssd", "balanced"] {
        let compute = if profile == "balanced" {
            // Calibrate: a serial probe run gives the io/compute ratio;
            // scaling both cost terms by it makes the two clocks meet.
            let probe = run_side(&data, &mut raw_hdd(), base, epochs, false);
            let factor = probe.io_seconds / probe.compute_seconds;
            ComputeCostModel {
                flops_per_second: base.flops_per_second / factor,
                per_tuple_overhead: base.per_tuple_overhead * factor,
            }
        } else {
            base
        };
        let dev_for = || match profile {
            "ssd" => data.ssd(),
            "balanced" => raw_hdd(),
            _ => data.hdd(),
        };
        let serial = run_side(&data, &mut dev_for(), compute, epochs, false);
        let pipelined = run_side(&data, &mut dev_for(), compute, epochs, true);
        runs.push(PipelineRun {
            profile: profile.to_string(),
            serial,
            pipelined,
        });
    }
    runs
}

/// Micro-benchmark the dense dot/axpy kernels, scalar vs 8-wide unrolled.
pub fn kernel_gflops(dim: usize, iters: usize) -> Vec<KernelRow> {
    let x: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
    let mut w: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.11).cos()).collect();
    let flops = (2 * dim * iters) as f64;
    let mut rows = Vec::new();
    let mut acc = 0.0f32;

    let t = Instant::now();
    for _ in 0..iters {
        acc += dense_dot_scalar(&x, &w);
    }
    rows.push(KernelRow {
        kernel: "dot_scalar".into(),
        dim,
        gflops: flops / t.elapsed().as_secs_f64() / 1e9,
    });

    let t = Instant::now();
    for _ in 0..iters {
        acc += dense_dot(&x, &w);
    }
    rows.push(KernelRow {
        kernel: "dot_unrolled".into(),
        dim,
        gflops: flops / t.elapsed().as_secs_f64() / 1e9,
    });

    let t = Instant::now();
    for _ in 0..iters {
        dense_axpy_scalar(1e-9, &x, &mut w);
    }
    rows.push(KernelRow {
        kernel: "axpy_scalar".into(),
        dim,
        gflops: flops / t.elapsed().as_secs_f64() / 1e9,
    });

    let t = Instant::now();
    for _ in 0..iters {
        dense_axpy(1e-9, &x, &mut w);
    }
    rows.push(KernelRow {
        kernel: "axpy_unrolled".into(),
        dim,
        gflops: flops / t.elapsed().as_secs_f64() / 1e9,
    });

    // Keep the accumulators observable so the loops cannot be elided.
    if acc.is_nan() || w[0].is_nan() {
        eprintln!("kernel micro-bench produced NaN");
    }
    rows
}

/// Render the root-level `BENCH_pipeline.json` artifact.
pub fn render_bench_json(runs: &[PipelineRun], kernels: &[KernelRow]) -> String {
    let mut out = String::from("{\n  \"id\": \"pipeline\",\n  \"profiles\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"profile\": \"{}\", \"serial_sim_seconds\": {:.6}, \
             \"pipelined_sim_seconds\": {:.6}, \"speedup\": {:.4}, \
             \"serial_wall_seconds\": {:.6}, \"pipelined_wall_seconds\": {:.6}, \
             \"serial_tuples_per_sec\": {:.1}, \"pipelined_tuples_per_sec\": {:.1}}}{}\n",
            r.profile,
            r.serial.sim_seconds,
            r.pipelined.sim_seconds,
            r.speedup(),
            r.serial.wall_seconds,
            r.pipelined.wall_seconds,
            r.serial.tuples_per_sec,
            r.pipelined.tuples_per_sec,
            comma,
        ));
    }
    out.push_str("  ],\n  \"kernel_gflops\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"dim\": {}, \"gflops\": {:.4}}}{}\n",
            k.kernel, k.dim, k.gflops, comma,
        ));
    }
    let balanced = runs
        .iter()
        .find(|r| r.profile == "balanced")
        .map(|r| r.speedup())
        .unwrap_or(0.0);
    out.push_str(&format!("  ],\n  \"speedup_balanced\": {balanced:.4}\n}}"));
    out
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `pipeline` experiment: the table above plus the root JSON artifact.
pub fn pipeline() {
    let n = env_usize("CORGI_PIPELINE_TUPLES", 12_000);
    let epochs = env_usize("CORGI_PIPELINE_EPOCHS", 3);
    let runs = measure(n, epochs);
    let kernels = kernel_gflops(256, 200_000);

    let mut rep = Report::new(
        "pipeline",
        "serial vs double-buffered epoch time (real prefetch pipeline)",
        &[
            "profile",
            "serial_epoch_s",
            "pipelined_epoch_s",
            "speedup",
            "serial_wall_s",
            "pipelined_wall_s",
            "tuples_per_s",
        ],
    );
    for r in &runs {
        rep.row_strings(vec![
            r.profile.clone(),
            format!("{:.4}", r.serial.sim_seconds / epochs as f64),
            format!("{:.4}", r.pipelined.sim_seconds / epochs as f64),
            format!("{:.2}x", r.speedup()),
            format!("{:.3}", r.serial.wall_seconds),
            format!("{:.3}", r.pipelined.wall_seconds),
            format!("{:.0}", r.pipelined.tuples_per_sec),
        ]);
    }
    for k in &kernels {
        rep.note(format!(
            "{} dim={}: {:.2} GFLOP/s",
            k.kernel, k.dim, k.gflops
        ));
    }
    rep.note(
        "balanced = HDD with the compute model calibrated so compute ≈ I/O, \
         the regime where double buffering approaches 2x (§6.3).",
    );
    rep.finish();

    let root = std::env::var("CORGI_BENCH_ROOT").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&root).join("BENCH_pipeline.json");
    match std::fs::write(&path, render_bench_json(&runs, &kernels) + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_storage::DoubleBufferModel;

    #[test]
    fn balanced_profile_speedup_meets_target_and_matches_analytic_model() {
        let runs = measure(2_000, 2);
        let balanced = runs.iter().find(|r| r.profile == "balanced").unwrap();
        // The calibration really balanced the two clocks.
        let ratio = balanced.serial.io_seconds / balanced.serial.compute_seconds;
        assert!((0.8..1.25).contains(&ratio), "io/compute ratio {ratio}");
        // Headline requirement: ≥ 1.3x on the balanced profile.
        assert!(
            balanced.speedup() >= 1.3,
            "balanced speedup {:.2} < 1.3",
            balanced.speedup()
        );
        // The measured pipelined time must sit inside the analytic
        // double-buffer envelope: no better than perfect overlap
        // max(io, compute), no worse than no overlap io + compute.
        for r in &runs {
            let lower = r.serial.io_seconds.max(r.serial.compute_seconds);
            let upper = r.serial.io_seconds + r.serial.compute_seconds;
            assert!(
                r.pipelined.sim_seconds >= lower - 1e-9,
                "{}: pipelined {} beats perfect overlap {}",
                r.profile,
                r.pipelined.sim_seconds,
                lower
            );
            assert!(
                r.pipelined.sim_seconds <= upper + 1e-9,
                "{}: pipelined {} worse than serial {}",
                r.profile,
                r.pipelined.sim_seconds,
                upper
            );
            // Generous-tolerance check against the analytic prediction:
            // with ~10 equal fills per epoch (buffer_fraction 0.10) the
            // pipeline's startup + drain add about one fill of each clock,
            // so predicted ≈ max + (io + compute) / fills.
            let fills = 10.0;
            let predicted = lower + (r.serial.io_seconds + r.serial.compute_seconds) / fills;
            let err = (r.pipelined.sim_seconds - predicted).abs() / predicted;
            assert!(
                err < 0.30,
                "{}: pipelined {} vs analytic {} ({}% off)",
                r.profile,
                r.pipelined.sim_seconds,
                predicted,
                (err * 100.0) as u32
            );
        }
    }

    #[test]
    fn pipelined_epoch_equals_double_buffer_model_exactly_per_epoch() {
        // At the per-epoch level the trainer's pipelined clock IS the
        // analytic model applied to the recorded fill costs; serial minus
        // pipelined therefore equals the overlap the model predicts.
        let runs = measure(1_500, 1);
        for r in &runs {
            let hidden = r.serial.sim_seconds - r.pipelined.sim_seconds;
            assert!(
                hidden >= -1e-9,
                "{}: pipelining must never slow the clock",
                r.profile
            );
            // Sanity link to the model's two bounds.
            let max_hidable = r.serial.io_seconds.min(r.serial.compute_seconds);
            assert!(hidden <= max_hidable + 1e-9);
        }
        // The model itself: equal fill vectors halve (asymptotically).
        let io = vec![1.0; 8];
        let compute = vec![1.0; 8];
        let db = DoubleBufferModel::double_buffer(&io, &compute);
        assert!(db < DoubleBufferModel::single_buffer(&io, &compute));
    }

    #[test]
    fn kernel_rows_and_json_render() {
        let kernels = kernel_gflops(64, 2_000);
        assert_eq!(kernels.len(), 4);
        assert!(kernels.iter().all(|k| k.gflops > 0.0));
        let runs = measure(1_000, 1);
        let json = render_bench_json(&runs, &kernels);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"profiles\""));
        assert!(json.contains("\"balanced\""));
        assert!(json.contains("\"kernel_gflops\""));
        assert!(json.contains("\"speedup_balanced\""));
        // Crude structural validity: balanced braces and brackets.
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }
}
