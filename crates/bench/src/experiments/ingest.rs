//! Ingest benchmark: append throughput through the versioned block
//! storage, and `TRAIN … CONTINUOUS` vs retrain-from-scratch on a
//! drifting stream.
//!
//! Three measurements back the appendable-storage design (DESIGN.md §16):
//!
//! 1. **Append throughput** — `INSERT`-sized batches stream through the
//!    catalog's buffered append writer on a durable engine; every
//!    statement is one fsynced `CORGIWL1` frame in the table WAL and one
//!    published snapshot version. Reports rows/sec and WAL bytes.
//! 2. **Drift workload** — fresh rows arrive while a model must stay
//!    current. The `CONTINUOUS` arm trains once with `refresh = 1`,
//!    re-pinning the latest snapshot at each epoch boundary (total I/O:
//!    `K` epoch scans). The retrain arm reacts to every drift step the
//!    only way immutable tables allow — training from scratch over the
//!    grown table with the epoch count the continuous run has consumed
//!    by then (total I/O: `K·(K+1)/2` epoch scans). Both arms see the
//!    identical append schedule; the gate requires the continuous arm to
//!    reach the retrain arm's final loss with measurably less device I/O.
//! 3. **Bit-identity** — the continuous arm reruns on a fresh engine with
//!    the same drift schedule and must reproduce the model bit for bit
//!    (`bit_identical_all`), the pinned-snapshot reproducibility claim at
//!    benchmark scale.
//!
//! Writes `results/ingest.{tsv,json}` plus the root-level
//! `BENCH_ingest.json` artifact (directory override: `CORGI_BENCH_ROOT`).
//! `CORGI_INGEST_TUPLES` / `CORGI_INGEST_EPOCHS` / `CORGI_INGEST_ROWS` /
//! `CORGI_INGEST_BATCH` shrink the run for CI smoke tests.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use crate::report::Report;
use corgipile_data::{DatasetSpec, Order};
use corgipile_db::Database;
use corgipile_storage::{SimDevice, Table, Tuple};

const DIM: usize = 28;

/// Append-throughput probe result.
#[derive(Debug, Clone)]
pub struct AppendRun {
    /// Rows appended.
    pub rows: u64,
    /// Statements (one WAL frame + one published version each).
    pub batches: u64,
    /// Rows acknowledged per wall second.
    pub rows_per_sec: f64,
    /// Table WAL bytes after the run.
    pub wal_bytes: u64,
    /// Snapshot version after the run (1 + batches).
    pub final_version: u64,
}

/// One arm of the drift workload.
#[derive(Debug, Clone)]
pub struct DriftArm {
    /// Epoch scans this arm paid in total.
    pub epoch_scans: u64,
    /// Device bytes read over the whole arm.
    pub io_bytes: u64,
    /// Final training loss over the final snapshot.
    pub loss: f64,
}

/// Drift-workload comparison plus the rerun bit-identity verdict.
#[derive(Debug, Clone)]
pub struct DriftRun {
    /// Drift steps (= continuous epochs).
    pub epochs: u64,
    /// The `TRAIN … CONTINUOUS` arm.
    pub continuous: DriftArm,
    /// The retrain-from-scratch arm.
    pub retrain: DriftArm,
    /// Continuous rerun reproduced the model bit for bit.
    pub bit_identical: bool,
}

fn clustered(n: usize) -> Table {
    DatasetSpec::higgs_like(n)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(1)
        .unwrap()
}

fn bench_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("corgi_bench_ingest_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Deterministic drift batch `step`: the feature walk drifts with the
/// step index, labels alternate.
fn drift_batch(step: usize, rows: usize) -> Vec<Tuple> {
    (0..rows)
        .map(|i| {
            let x = (step * 1000 + i) as f32 * 0.001;
            Tuple::dense(0, vec![x; DIM], (i % 2) as f32)
        })
        .collect()
}

fn continuous_sql(epochs: usize) -> String {
    format!(
        "SELECT * FROM higgs TRAIN BY svm CONTINUOUS WITH learning_rate = 0.05, \
         max_epoch_num = {epochs}, seed = 7, strategy = 'corgipile', \
         buffer_fraction = 0.2, model_name = m, refresh = 1"
    )
}

fn scratch_sql(epochs: usize) -> String {
    format!(
        "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.05, \
         max_epoch_num = {epochs}, seed = 7, strategy = 'corgipile', \
         buffer_fraction = 0.2, model_name = m"
    )
}

/// Stream `rows` through the durable append writer in `batch_rows`-row
/// statements, measuring acknowledged rows per wall second.
pub fn measure_append_throughput(rows: usize, batch_rows: usize) -> AppendRun {
    let dir = bench_dir("append");
    let db = Database::with_model_store(SimDevice::hdd_scaled(1000.0, 0), 0, &dir)
        .expect("open durable engine");
    db.register_table("higgs", clustered(1000));
    let batches = rows.div_ceil(batch_rows) as u64;
    let start = Instant::now();
    let mut sent = 0usize;
    let mut step = 0usize;
    while sent < rows {
        let n = batch_rows.min(rows - sent);
        db.catalog()
            .append_rows("higgs", drift_batch(step, n))
            .expect("append batch");
        sent += n;
        step += 1;
    }
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let wal_bytes = std::fs::metadata(dir.join("tables").join("higgs.wal"))
        .map(|m| m.len())
        .unwrap_or(0);
    let final_version = db.catalog().table_version("higgs").expect("version");
    std::fs::remove_dir_all(&dir).ok();
    AppendRun {
        rows: rows as u64,
        batches,
        rows_per_sec: rows as f64 / wall,
        wal_bytes,
        final_version,
    }
}

/// One continuous-arm run: a refresh hook appends `batch` drift rows at
/// every epoch boundary while a single `CONTINUOUS` query trains through
/// them. Returns the final params alongside the arm metrics.
fn run_continuous(n: usize, epochs: usize, batch: usize) -> (Vec<f32>, DriftArm) {
    let db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
    db.register_table("higgs", clustered(n));
    let hook_db = Arc::clone(&db);
    let mut s = db.connect();
    s.set_refresh_hook(move |chunk| {
        hook_db
            .catalog()
            .append_rows("higgs", drift_batch(chunk, batch))
            .expect("drift append");
    });
    s.execute(&continuous_sql(epochs))
        .expect("continuous train");
    drop(s);
    let m = db.catalog().model("m").expect("continuous model");
    (
        m.params.clone(),
        DriftArm {
            epoch_scans: epochs as u64,
            io_bytes: db.device_stats().device_bytes,
            loss: m.train_loss,
        },
    )
}

/// The retrain arm over the same drift schedule: at step `s` the table
/// has grown by `s` batches and the model is retrained from scratch with
/// `s + 1` epochs (the epoch budget the continuous arm has consumed by
/// that step).
fn run_retrain(n: usize, epochs: usize, batch: usize) -> DriftArm {
    let db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
    db.register_table("higgs", clustered(n));
    let mut scans = 0u64;
    for step in 0..epochs {
        if step > 0 {
            db.catalog()
                .append_rows("higgs", drift_batch(step, batch))
                .expect("drift append");
        }
        db.connect()
            .execute(&scratch_sql(step + 1))
            .expect("scratch retrain");
        scans += (step + 1) as u64;
    }
    let m = db.catalog().model("m").expect("retrain model");
    DriftArm {
        epoch_scans: scans,
        io_bytes: db.device_stats().device_bytes,
        loss: m.train_loss,
    }
}

/// Run both arms over the identical drift schedule, then rerun the
/// continuous arm for the bit-identity verdict.
pub fn measure_drift(n: usize, epochs: usize, batch: usize) -> DriftRun {
    let (params_a, continuous) = run_continuous(n, epochs, batch);
    let retrain = run_retrain(n, epochs, batch);
    let (params_b, _) = run_continuous(n, epochs, batch);
    DriftRun {
        epochs: epochs as u64,
        continuous,
        retrain,
        bit_identical: params_a == params_b,
    }
}

/// Render the root-level `BENCH_ingest.json` artifact.
pub fn render_bench_json(append: &AppendRun, drift: &DriftRun) -> String {
    let io_ratio = drift.retrain.io_bytes as f64 / (drift.continuous.io_bytes.max(1)) as f64;
    format!(
        "{{\n  \"id\": \"ingest\",\n  \"append\": {{\"rows\": {}, \"batches\": {}, \
         \"rows_per_sec\": {:.2}, \"wal_bytes\": {}, \"final_version\": {}}},\n  \
         \"drift\": {{\"epochs\": {}, \"continuous_epoch_scans\": {}, \
         \"retrain_epoch_scans\": {}, \"continuous_io_bytes\": {}, \
         \"retrain_io_bytes\": {}, \"io_ratio\": {:.4}, \"continuous_loss\": {:.6}, \
         \"retrain_loss\": {:.6}}},\n  \"continuous_reaches_target\": {},\n  \
         \"bit_identical_all\": {}\n}}",
        append.rows,
        append.batches,
        append.rows_per_sec,
        append.wal_bytes,
        append.final_version,
        drift.epochs,
        drift.continuous.epoch_scans,
        drift.retrain.epoch_scans,
        drift.continuous.io_bytes,
        drift.retrain.io_bytes,
        io_ratio,
        drift.continuous.loss,
        drift.retrain.loss,
        drift.continuous.loss <= drift.retrain.loss * 1.1 + 1e-6,
        drift.bit_identical,
    )
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `ingest` experiment: append throughput, continuous-vs-retrain
/// drift workload, rerun bit-identity, plus the root JSON artifact.
pub fn ingest() {
    let n = env_usize("CORGI_INGEST_TUPLES", 20_000);
    let epochs = env_usize("CORGI_INGEST_EPOCHS", 6);
    let append_rows = env_usize("CORGI_INGEST_ROWS", 20_000);
    let batch = env_usize("CORGI_INGEST_BATCH", 200);
    let append = measure_append_throughput(append_rows, batch);
    let drift = measure_drift(n, epochs, batch);

    let mut rep = Report::new(
        "ingest",
        "append throughput, TRAIN CONTINUOUS vs retrain-from-scratch on a drifting stream",
        &["metric", "value"],
    );
    rep.row_strings(vec![
        format!(
            "append rows/sec ({} rows, {} batches)",
            append.rows, append.batches
        ),
        format!("{:.0}", append.rows_per_sec),
    ]);
    rep.row_strings(vec![
        "table WAL bytes".into(),
        format!("{}", append.wal_bytes),
    ]);
    rep.row_strings(vec![
        "continuous io bytes / epoch scans".into(),
        format!(
            "{} / {}",
            drift.continuous.io_bytes, drift.continuous.epoch_scans
        ),
    ]);
    rep.row_strings(vec![
        "retrain io bytes / epoch scans".into(),
        format!("{} / {}", drift.retrain.io_bytes, drift.retrain.epoch_scans),
    ]);
    rep.row_strings(vec![
        "final loss (continuous vs retrain)".into(),
        format!("{:.6} vs {:.6}", drift.continuous.loss, drift.retrain.loss),
    ]);
    rep.row_strings(vec![
        "continuous rerun bit-identical".into(),
        format!("{}", drift.bit_identical),
    ]);
    rep.note(
        "CONTINUOUS re-pins the latest snapshot at each refresh boundary and keeps \
         the warm model, paying one epoch scan per drift step; retraining from \
         scratch on every drift step pays a quadratically growing scan total for \
         the same final loss.",
    );
    rep.finish();

    let root = std::env::var("CORGI_BENCH_ROOT").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&root).join("BENCH_ingest.json");
    match std::fs::write(&path, render_bench_json(&append, &drift) + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_throughput_is_positive_and_journaled() {
        let run = measure_append_throughput(500, 100);
        assert_eq!(run.rows, 500);
        assert_eq!(run.batches, 5);
        assert!(run.rows_per_sec > 0.0);
        assert!(run.wal_bytes > 0, "appends must hit the table WAL");
        assert_eq!(run.final_version, 6, "one published version per statement");
    }

    #[test]
    fn continuous_beats_retrain_io_and_reruns_identically() {
        let drift = measure_drift(2_000, 3, 50);
        assert!(
            drift.continuous.io_bytes < drift.retrain.io_bytes,
            "continuous {} vs retrain {}",
            drift.continuous.io_bytes,
            drift.retrain.io_bytes
        );
        assert!(drift.continuous.epoch_scans < drift.retrain.epoch_scans);
        assert!(drift.bit_identical, "continuous rerun diverged");
    }

    #[test]
    fn bench_json_is_well_formed() {
        let append = AppendRun {
            rows: 500,
            batches: 5,
            rows_per_sec: 1000.0,
            wal_bytes: 4096,
            final_version: 6,
        };
        let drift = DriftRun {
            epochs: 3,
            continuous: DriftArm {
                epoch_scans: 3,
                io_bytes: 100,
                loss: 0.5,
            },
            retrain: DriftArm {
                epoch_scans: 6,
                io_bytes: 200,
                loss: 0.5,
            },
            bit_identical: true,
        };
        let json = render_bench_json(&append, &drift);
        assert!(json.contains("\"io_ratio\": 2.0000"));
        assert!(json.contains("\"continuous_reaches_target\": true"));
        assert!(json.contains("\"bit_identical_all\": true"));
        assert!(json.ends_with('}'));
    }
}
