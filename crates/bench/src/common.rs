//! Shared experiment infrastructure: scaled datasets and devices.

use corgipile_data::{DataKind, Dataset, DatasetSpec, Order};
use corgipile_ml::OptimizerKind;
use corgipile_storage::{DeviceProfile, SimDevice, Table};

/// Per-dataset GLM learning rate (the paper grid-searches {0.1, 0.01,
/// 0.001} per workload, §7.1.3). Unit-normalized embedding data (epsilon,
/// yfcc) needs a much larger rate than raw-feature data.
pub fn glm_optimizer(dataset: &str) -> OptimizerKind {
    match dataset {
        "epsilon" | "yfcc" => OptimizerKind::Sgd {
            lr0: 4.0,
            decay: 0.8,
        },
        _ => OptimizerKind::Sgd {
            lr0: 0.03,
            decay: 0.8,
        },
    }
}

/// Per-dataset learning rate for mini-batch SGD (gradients are averaged
/// over the batch, so normalized embedding data needs an even larger
/// rate).
pub fn glm_minibatch_optimizer(dataset: &str) -> OptimizerKind {
    match dataset {
        "epsilon" | "yfcc" => OptimizerKind::Sgd {
            lr0: 8.0,
            decay: 0.95,
        },
        _ => OptimizerKind::Sgd {
            lr0: 0.1,
            decay: 0.9,
        },
    }
}

/// The paper's block size (10 MB), against which scales are computed.
pub const PAPER_BLOCK_BYTES: f64 = (10u64 << 20) as f64;

/// The paper's RAM size (32 GB) relative to its biggest datasets — criteo
/// (50 GB) and yfcc (55 GB) do not fit, everything else does.
fn fits_in_cache(name: &str) -> bool {
    !matches!(name, "criteo" | "yfcc" | "imagenet")
}

/// One experiment-ready dataset: spec, materialized data, heap table.
pub struct ExpData {
    /// The generating spec (carries name/order/block size).
    pub spec: DatasetSpec,
    /// Train+test tuples.
    pub ds: Dataset,
    /// The train split as a heap table.
    pub table: Table,
}

impl ExpData {
    /// Build from a spec.
    pub fn build(spec: DatasetSpec, seed: u64, table_id: u32) -> Self {
        let ds = spec.build(seed);
        let table = ds.to_table(table_id).expect("valid spec");
        ExpData { spec, ds, table }
    }

    /// The device scale factor preserving the paper's seek-to-transfer
    /// ratio for this table's block size.
    pub fn device_scale(&self) -> f64 {
        (PAPER_BLOCK_BYTES / self.spec.block_bytes as f64).max(1.0)
    }

    /// HDD + SSD devices scaled for this dataset, with an OS cache sized so
    /// that datasets which fit in the paper's RAM fit here too.
    pub fn devices(&self) -> (SimDevice, SimDevice) {
        devices_for(
            &self.table,
            self.device_scale(),
            fits_in_cache(&self.spec.name),
        )
    }

    /// The scaled HDD only.
    pub fn hdd(&self) -> SimDevice {
        self.devices().0
    }

    /// The scaled SSD only.
    pub fn ssd(&self) -> SimDevice {
        self.devices().1
    }
}

/// Build scaled HDD/SSD devices for a table.
pub fn devices_for(table: &Table, scale: f64, fits: bool) -> (SimDevice, SimDevice) {
    // Shuffle-Once needs room for the shuffled copy too, so "fits" means
    // 3× the table; "doesn't fit" caches half the table.
    let cache = if fits {
        table.total_bytes() * 3
    } else {
        table.total_bytes() / 2
    };
    (
        SimDevice::new(
            DeviceProfile::hdd_scaled(scale),
            corgipile_storage::CacheConfig::with_capacity(cache),
        ),
        SimDevice::new(
            DeviceProfile::ssd_scaled(scale),
            corgipile_storage::CacheConfig::with_capacity(cache),
        ),
    )
}

/// The five GLM datasets of §7.3 at experiment scale, with per-dataset
/// block sizes holding ≥ ~30 tuples per block (see DESIGN.md §4).
pub fn glm_datasets(order: Order) -> Vec<DatasetSpec> {
    vec![
        DatasetSpec::higgs_like(24_000)
            .with_order(order)
            .with_block_bytes(8 << 10),
        DatasetSpec::susy_like(12_000)
            .with_order(order)
            .with_block_bytes(8 << 10),
        DatasetSpec::epsilon_like(1_500)
            .with_order(order)
            .with_block_bytes(256 << 10),
        DatasetSpec::criteo_like(24_000)
            .with_order(order)
            .with_block_bytes(32 << 10),
        DatasetSpec::yfcc_like(1_000)
            .with_order(order)
            .with_block_bytes(512 << 10),
    ]
}

/// A quick (smaller) variant of [`glm_datasets`] for convergence-only runs.
pub fn glm_datasets_small(order: Order) -> Vec<DatasetSpec> {
    vec![
        DatasetSpec::higgs_like(8_000)
            .with_order(order)
            .with_block_bytes(8 << 10),
        DatasetSpec::susy_like(6_000)
            .with_order(order)
            .with_block_bytes(8 << 10),
        DatasetSpec::epsilon_like(800)
            .with_order(order)
            .with_block_bytes(128 << 10),
        DatasetSpec::criteo_like(8_000)
            .with_order(order)
            .with_block_bytes(16 << 10),
        DatasetSpec::yfcc_like(700)
            .with_order(order)
            .with_block_bytes(256 << 10),
    ]
}

/// The cifar-10 stand-in (§7.2.2).
pub fn cifar_dataset(order: Order) -> DatasetSpec {
    DatasetSpec::cifar_like(4_000)
        .with_order(order)
        .with_block_bytes(8 << 10)
}

/// The yelp-review stand-in (§7.2.2).
pub fn yelp_dataset(order: Order) -> DatasetSpec {
    DatasetSpec::yelp_like(4_000)
        .with_order(order)
        .with_block_bytes(8 << 10)
}

/// The ImageNet stand-in (§7.2.1) — more classes, wider features.
pub fn imagenet_dataset(order: Order) -> DatasetSpec {
    DatasetSpec::new(
        "imagenet",
        DataKind::MultiClass {
            dim: 128,
            classes: 20,
            separation: 3.5,
        },
        6_000,
    )
    .with_order(order)
    .with_block_bytes(16 << 10)
}

/// YearPredictionMSD stand-in (§7.4.2).
pub fn msd_dataset(order: Order) -> DatasetSpec {
    DatasetSpec::msd_like(8_000)
        .with_order(order)
        .with_block_bytes(8 << 10)
}

/// mini8m stand-in (§7.4.2).
pub fn mini8m_dataset(order: Order) -> DatasetSpec {
    DatasetSpec::mini8m_like(2_000)
        .with_order(order)
        .with_block_bytes(64 << 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_scale_preserves_seek_transfer_ratio() {
        let e = ExpData::build(
            DatasetSpec::higgs_like(2_000).with_block_bytes(8 << 10),
            1,
            1,
        );
        let scale = e.device_scale();
        assert!((scale - 1280.0).abs() < 1.0);
        let (hdd, _) = e.devices();
        let paper_ratio = (PAPER_BLOCK_BYTES / 140e6) / 8e-3;
        let our_ratio = ((8 << 10) as f64 / 140e6) / hdd.profile().seek_latency_s;
        assert!((paper_ratio - our_ratio).abs() / paper_ratio < 0.01);
    }

    #[test]
    fn glm_datasets_have_enough_blocks() {
        for spec in glm_datasets_small(Order::ClusteredByLabel) {
            let e = ExpData::build(spec, 2, 3);
            assert!(
                e.table.num_blocks() >= 20,
                "{}: only {} blocks",
                e.spec.name,
                e.table.num_blocks()
            );
            assert!(
                e.table.tuples_per_block() >= 10.0,
                "{}: only {} tuples/block",
                e.spec.name,
                e.table.tuples_per_block()
            );
        }
    }

    #[test]
    fn cache_policy_separates_big_and_small() {
        assert!(fits_in_cache("higgs"));
        assert!(!fits_in_cache("criteo"));
        assert!(!fits_in_cache("yfcc"));
    }
}
