//! # corgipile-bench
//!
//! The experiment harness regenerating every table and figure of the
//! CorgiPile paper's evaluation (§7). Each experiment is a function that
//! runs the relevant workloads at laptop scale, prints the paper's
//! rows/series to stdout, and writes a TSV into `results/`.
//!
//! Run `corgi-bench list` for the experiment index, `corgi-bench all` for
//! everything, or `corgi-bench fig11` (etc.) for one artifact. Use
//! `--release`: the deep-learning stand-ins execute real gradient math.
//!
//! Scaling discipline (DESIGN.md §2/§4): datasets are 10³–10⁴× smaller
//! than the paper's, block sizes shrink proportionally, and the simulated
//! device's seek latency shrinks by the same factor
//! ([`common::devices_for`]), so every seek-to-transfer ratio — and hence
//! every relative result — is preserved.

pub mod common;
pub mod experiments;
pub mod report;

pub use common::{devices_for, ExpData};
pub use report::Report;
