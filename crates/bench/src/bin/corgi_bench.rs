//! `corgi-bench`: regenerate the CorgiPile paper's tables and figures.
//!
//! ```text
//! corgi-bench list          # index of experiments
//! corgi-bench fig11         # one artifact
//! corgi-bench fig1 fig3     # several
//! corgi-bench all           # everything (use --release!)
//! ```
//!
//! TSV outputs land in `results/` (override with `CORGI_RESULTS_DIR`).

use corgipile_bench::experiments::registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = registry();
    if args.is_empty()
        || args
            .iter()
            .any(|a| a == "list" || a == "--help" || a == "-h")
    {
        println!("corgi-bench — regenerate the CorgiPile paper's evaluation\n");
        println!("usage: corgi-bench <experiment>... | all | list\n");
        println!("{:<8}  artifact", "id");
        println!("{}", "-".repeat(80));
        for e in &experiments {
            println!("{:<8}  {}", e.id, e.what);
        }
        return;
    }

    let wanted: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments.iter().map(|e| e.id).collect()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    let mut unknown = Vec::new();
    for id in &wanted {
        match experiments.iter().find(|e| e.id == *id) {
            Some(e) => {
                eprintln!("[corgi-bench] running {} — {}", e.id, e.what);
                let t0 = std::time::Instant::now();
                (e.run)();
                eprintln!(
                    "[corgi-bench] {} done in {:.1}s\n",
                    e.id,
                    t0.elapsed().as_secs_f64()
                );
            }
            None => unknown.push(*id),
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment(s): {}; run `corgi-bench list`",
            unknown.join(", ")
        );
        std::process::exit(2);
    }
}
