//! `corgi-sql`: an interactive SQL shell over the in-DB CorgiPile engine.
//!
//! ```sh
//! cargo run --release -p corgipile-bench --bin corgi-sql
//! ```
//!
//! Starts a session over a simulated device with the five GLM demo tables
//! pre-registered (clustered order, scaled blocks). Supports the full §6
//! surface plus introspection:
//!
//! ```sql
//! SHOW TABLES;
//! EXPLAIN SELECT * FROM higgs TRAIN BY svm WITH strategy = 'corgipile';
//! SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.03, max_epoch_num = 5;
//! SELECT * FROM higgs PREDICT BY higgs_svm;
//! ```
//!
//! Meta-commands: `\d` (tables), `\m` (models), `\q` (quit), `\help`.

use corgipile_bench::common::glm_datasets;
use corgipile_data::Order;
use corgipile_db::{Database, QueryResult};
use corgipile_storage::SimDevice;
use std::io::{BufRead, Write};

fn main() {
    let db = Database::new(SimDevice::ssd_scaled(1280.0, 256 << 20));
    let mut session = db.connect();
    eprint!("loading demo tables");
    for spec in glm_datasets(Order::ClusteredByLabel) {
        let name = spec.name.clone();
        let table = spec.build_table(1).expect("demo table builds");
        session.register_table(name, table);
        eprint!(".");
    }
    eprintln!(" done.");
    eprintln!("corgi-sql — type \\help for help, \\q to quit.");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        eprint!("corgi=# ");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "\\q" | "\\quit" | "exit" | "quit" => break,
            "\\d" => {
                writeln!(out, "{}", session.catalog().table_names().join("\n")).ok();
                continue;
            }
            "\\m" => {
                writeln!(out, "{}", session.catalog().model_names().join("\n")).ok();
                continue;
            }
            "\\help" => {
                writeln!(
                    out,
                    "queries:\n  SELECT * FROM <t> TRAIN BY <lr|svm|linreg|softmax|mlp> \
                     [WITH k = v, ...];\n  SELECT * FROM <t> PREDICT BY <model>;\n  \
                     EXPLAIN <train query>;\n  SHOW TABLES; SHOW MODELS;\n\
                     params: learning_rate, decay, max_epoch_num, batch_size, l2,\n        \
                     buffer_fraction, block_size, shared_buffers, seed,\n        \
                     double_buffer, report_metrics,\n        \
                     strategy = 'corgipile'|'once'|'no'|'block_only'|'tuple_only',\n        \
                     model_name\nmeta: \\d tables, \\m models, \\q quit"
                )
                .ok();
                continue;
            }
            _ => {}
        }
        match session.execute(line) {
            Ok(QueryResult::Train(t)) => {
                writeln!(
                    out,
                    "TRAIN OK: model '{}' ({}), strategy {}, {} epochs",
                    t.model_name,
                    t.model_kind,
                    t.strategy,
                    t.epochs.len()
                )
                .ok();
                for e in &t.epochs {
                    writeln!(
                        out,
                        "  epoch {:>2}: loss {:.4}  epoch_time {:>9.3}ms  total {:>9.3}ms",
                        e.epoch,
                        e.train_loss,
                        e.epoch_seconds * 1e3,
                        e.sim_seconds_end * 1e3
                    )
                    .ok();
                }
                writeln!(
                    out,
                    "  final train metric {:.2}%  (setup {:.3}ms)",
                    t.final_train_metric * 100.0,
                    t.setup_seconds * 1e3
                )
                .ok();
            }
            Ok(QueryResult::Predict {
                predictions,
                metric,
            }) => {
                writeln!(
                    out,
                    "PREDICT OK: {} rows, metric {:.2}% (first 10: {:?})",
                    predictions.len(),
                    metric * 100.0,
                    &predictions[..predictions.len().min(10)]
                )
                .ok();
            }
            Ok(QueryResult::Serve(p)) => {
                let metric = p
                    .metric
                    .map(|m| format!("{:.2}%", m * 100.0))
                    .unwrap_or_else(|| "n/a".into());
                let (p50, p99) = (
                    p.latency_quantile(0.5).unwrap_or(0.0) * 1e3,
                    p.latency_quantile(0.99).unwrap_or(0.0) * 1e3,
                );
                writeln!(
                    out,
                    "SERVE OK: model {} v{} ({}), {} rows in {} batches, metric {}, \
                     batch p50 {:.4}ms p99 {:.4}ms, io {:.3}ms compute {:.3}ms \
                     (first 10: {:?})",
                    p.model_name,
                    p.version,
                    if p.cache_hit {
                        "cache hit"
                    } else {
                        "cache miss"
                    },
                    p.rows,
                    p.batches,
                    metric,
                    p50,
                    p99,
                    p.io_seconds * 1e3,
                    p.compute_seconds * 1e3,
                    &p.predictions[..p.predictions.len().min(10)]
                )
                .ok();
            }
            Ok(QueryResult::Plan(lines)) => {
                for l in lines {
                    writeln!(out, "{l}").ok();
                }
            }
            Ok(QueryResult::Names(names)) => {
                for n in names {
                    writeln!(out, "{n}").ok();
                }
            }
            Ok(other) => {
                // QueryResult is #[non_exhaustive].
                writeln!(out, "OK: {other:?}").ok();
            }
            Err(e) => {
                writeln!(out, "ERROR: {e}").ok();
            }
        }
        out.flush().ok();
    }
}
