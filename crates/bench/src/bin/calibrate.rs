//! One-off calibration probe: converged Shuffle-Once test accuracy per dataset.
use corgipile_bench::common::*;
use corgipile_bench::experiments::{run_strategy, tail_metric};
use corgipile_data::Order;
use corgipile_ml::ModelKind;
use corgipile_shuffle::StrategyKind;

fn main() {
    for spec in glm_datasets(Order::ClusteredByLabel) {
        let spec = spec.with_test(2000);
        let data = ExpData::build(spec, 99, 99);
        let mk = ModelKind::LogisticRegression;
        let mut dev = data.ssd();
        let r = run_strategy(
            &data,
            mk.clone(),
            StrategyKind::ShuffleOnce,
            10,
            &mut dev,
            |c| c.with_optimizer(glm_optimizer(&data.spec.name)),
        );
        let mut dev2 = data.ssd();
        let n = run_strategy(&data, mk, StrategyKind::NoShuffle, 10, &mut dev2, |c| {
            c.with_optimizer(glm_optimizer(&data.spec.name))
        });
        println!(
            "{:<8} SO={:.3} NS={:.3}",
            data.spec.name,
            tail_metric(&r, 3),
            tail_metric(&n, 3)
        );
    }
}
