//! # corgipile-telemetry
//!
//! Dependency-free observability core for the CorgiPile stack.
//!
//! The central type is [`Telemetry`], a cheaply clonable handle that is
//! either *enabled* (wrapping a shared [`MetricsRegistry`] + [`EventLog`])
//! or *disabled* (`None` inside). A disabled handle hands out no-op
//! [`Counter`]/[`Gauge`]/[`Histogram`]/[`Span`] instruments whose
//! operations compile down to a branch on an `Option` — **no allocation
//! and no atomics on the hot path when telemetry is off**.
//!
//! Conventions used across the workspace:
//! - metric names are dotted lowercase, e.g. `storage.device.cache_hits`;
//! - spans record both wall time (`<name>.wall_seconds`) and simulated
//!   I/O-clock time (`<name>.sim_seconds`);
//! - per-epoch observations go to the [`EventLog`] keyed by epoch.
//!
//! Exports: [`Telemetry::json`] for machine-readable snapshots (consumed
//! by `corgipile-bench` reports) and [`Telemetry::prometheus`] for text
//! exposition.

pub mod events;
pub mod export;
pub mod registry;
pub mod span;

use std::sync::Arc;

pub use events::{Event, EventLog, DEFAULT_EVENT_CAPACITY};
pub use export::{json_escape, json_f64, to_json, to_prometheus};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, BUCKET_BOUNDS,
};
pub use span::Span;

#[derive(Debug, Default)]
struct Inner {
    registry: MetricsRegistry,
    events: EventLog,
}

/// Shared observability handle threaded through the stack.
///
/// Clones share the same registry and event log. The default handle is
/// disabled; construct with [`Telemetry::enabled`] to record.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

/// Full point-in-time view: metrics plus the retained event log.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    pub metrics: MetricsSnapshot,
    pub events: Vec<Event>,
    pub dropped_events: u64,
}

impl Telemetry {
    /// A recording handle with a fresh registry and event log.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A handle that records nothing (same as `Telemetry::default()`).
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolve (creating on first use) a named counter.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.registry.counter(name),
            None => Counter::noop(),
        }
    }

    /// Resolve (creating on first use) a named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.registry.gauge(name),
            None => Gauge::noop(),
        }
    }

    /// Resolve (creating on first use) a named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.registry.histogram(name),
            None => Histogram::noop(),
        }
    }

    /// Start a span guard; on drop it records wall seconds into
    /// `<name>.wall_seconds` and accumulated sim seconds into
    /// `<name>.sim_seconds`.
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            Some(_) => Span::new(
                self.histogram(&format!("{name}.wall_seconds")),
                self.histogram(&format!("{name}.sim_seconds")),
                true,
            ),
            None => Span::noop(),
        }
    }

    /// Append a per-epoch event to the log.
    pub fn event(&self, epoch: u64, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.events.record(epoch, name, value);
        }
    }

    /// Retained events (empty when disabled).
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map(|i| i.events.events())
            .unwrap_or_default()
    }

    /// Point-in-time view of every instrument and event.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match &self.inner {
            Some(inner) => TelemetrySnapshot {
                metrics: inner.registry.snapshot(),
                events: inner.events.events(),
                dropped_events: inner.events.dropped(),
            },
            None => TelemetrySnapshot::default(),
        }
    }

    /// JSON snapshot (see [`export::to_json`]).
    pub fn json(&self) -> String {
        to_json(&self.snapshot())
    }

    /// Prometheus text exposition (see [`export::to_prometheus`]).
    pub fn prometheus(&self) -> String {
        to_prometheus(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = Telemetry::enabled();
        let b = a.clone();
        a.counter("reads").inc();
        b.counter("reads").add(2);
        assert_eq!(a.counter("reads").get(), 3);
        assert!(a.is_enabled());
    }

    #[test]
    fn default_is_disabled_and_inert() {
        let tel = Telemetry::default();
        assert!(!tel.is_enabled());
        tel.counter("reads").inc();
        tel.gauge("g").set(1.0);
        tel.histogram("h").record(1.0);
        tel.event(0, "e", 1.0);
        tel.span("s").finish();
        let snap = tel.snapshot();
        assert!(snap.metrics.counters.is_empty());
        assert!(snap.events.is_empty());
        assert_eq!(tel.json(), to_json(&TelemetrySnapshot::default()));
    }

    #[test]
    fn snapshot_combines_metrics_and_events() {
        let tel = Telemetry::enabled();
        tel.counter("storage.device.cache_hits").add(7);
        tel.event(2, "db.epoch.io_seconds", 1.25);
        let snap = tel.snapshot();
        assert_eq!(
            snap.metrics.counters,
            vec![("storage.device.cache_hits".to_string(), 7)]
        );
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].epoch, 2);
        assert_eq!(snap.dropped_events, 0);
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let tel = Telemetry::enabled();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = tel.clone();
            handles.push(std::thread::spawn(move || {
                let c = t.counter("storage.device.device_bytes");
                let h = t.histogram("fill.seconds");
                for _ in 0..1000 {
                    c.inc();
                    h.record(0.01);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tel.counter("storage.device.device_bytes").get(), 4000);
        assert_eq!(tel.histogram("fill.seconds").count(), 4000);
        assert!((tel.histogram("fill.seconds").sum() - 40.0).abs() < 1e-9);
    }
}
