//! Named metric instruments backed by lock-free atomics.
//!
//! The registry hands out *resolved* handles ([`Counter`], [`Gauge`],
//! [`Histogram`]). Resolution takes a short-lived lock on a `BTreeMap`
//! (sorted, so exports are deterministic); every subsequent update is a
//! single atomic operation. A handle resolved from a disabled
//! [`crate::Telemetry`] carries `None` and every operation on it is a no-op
//! that allocates nothing.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A permanently disabled counter; all operations are no-ops.
    pub fn noop() -> Self {
        Counter(None)
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled counter).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Last-write-wins floating point value (stored as IEEE-754 bits).
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    pub fn noop() -> Self {
        Gauge(None)
    }

    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Add `delta` to the gauge via a compare-and-swap loop.
    pub fn add(&self, delta: f64) {
        if let Some(cell) = &self.0 {
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + delta).to_bits();
                match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Upper bounds (seconds) for histogram buckets. Chosen for I/O and fill
/// durations: sub-millisecond cache hits up to multi-minute epochs.
pub const BUCKET_BOUNDS: [f64; 10] = [0.0001, 0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0];

#[derive(Debug, Default)]
pub(crate) struct HistCore {
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; BUCKET_BOUNDS.len()],
}

fn cas_f64(cell: &AtomicU64, value: f64, keep: impl Fn(f64, f64) -> bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let seen = f64::from_bits(cur);
        if !keep(value, seen) {
            return;
        }
        match cell.compare_exchange_weak(cur, value.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

impl HistCore {
    fn record(&self, value: f64) {
        let first = self.count.fetch_add(1, Ordering::Relaxed) == 0;
        // sum += value
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        if first {
            self.min_bits.store(value.to_bits(), Ordering::Relaxed);
            self.max_bits.store(value.to_bits(), Ordering::Relaxed);
        }
        cas_f64(&self.min_bits, value, |v, seen| v < seen);
        cas_f64(&self.max_bits, value, |v, seen| v > seen);
        for (i, bound) in BUCKET_BOUNDS.iter().enumerate() {
            if value <= *bound {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.min_bits.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.max_bits.load(Ordering::Relaxed))
            },
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Distribution of observed values (durations, fill sizes, ...).
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistCore>>);

impl Histogram {
    pub fn noop() -> Self {
        Histogram(None)
    }

    pub fn record(&self, value: f64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    pub fn sum(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.sum_bits.load(Ordering::Relaxed)))
    }
}

/// Point-in-time view of a histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// Cumulative-free per-bucket counts aligned with [`BUCKET_BOUNDS`];
    /// values above the last bound are counted only in `count`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Point-in-time view of every instrument in a registry, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Registry of named instruments. Instrument names are created on first
/// resolution and live for the registry's lifetime.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCore>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock(&self.counters);
        let cell = map.entry(name.to_string()).or_default();
        Counter(Some(Arc::clone(cell)))
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock(&self.gauges);
        let cell = map.entry(name.to_string()).or_default();
        Gauge(Some(Arc::clone(cell)))
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock(&self.histograms);
        let cell = map.entry(name.to_string()).or_default();
        Histogram(Some(Arc::clone(cell)))
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_resolves_to_shared_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("io.reads");
        let b = reg.counter("io.reads");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counters, vec![("io.reads".to_string(), 5)]);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("io.seconds");
        g.set(1.5);
        g.add(0.25);
        assert!((g.get() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("fill.seconds");
        for v in [0.0005, 0.02, 0.02, 3.0] {
            h.record(v);
        }
        let snap = &reg.snapshot().histograms[0].1;
        assert_eq!(snap.count, 4);
        assert!((snap.sum - 3.0405).abs() < 1e-12);
        assert!((snap.min - 0.0005).abs() < 1e-15);
        assert!((snap.max - 3.0).abs() < 1e-12);
        assert_eq!(snap.buckets[1], 1); // <= 1ms
        assert_eq!(snap.buckets[3], 2); // <= 50ms
        assert_eq!(snap.buckets[7], 1); // <= 5s
        assert!((snap.mean() - 3.0405 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_handles_are_noops() {
        let c = Counter::noop();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(9.0);
        g.add(1.0);
        assert_eq!(g.get(), 0.0);
        let h = Histogram::noop();
        h.record(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").inc();
        let names: Vec<_> = reg
            .snapshot()
            .counters
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
    }
}
