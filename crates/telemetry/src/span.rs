//! Span guards: scoped timers that record into paired histograms.
//!
//! A [`Span`] measures *wall* time automatically (from creation to drop)
//! and *simulated* time explicitly: callers add sim-clock deltas via
//! [`Span::add_sim_seconds`] as they charge the [`SimDevice`] clock. On
//! drop the wall duration lands in `<name>.wall_seconds` and the
//! accumulated sim duration in `<name>.sim_seconds`.
//!
//! [`SimDevice`]: https://en.wikipedia.org/wiki/Discrete-event_simulation

use std::time::Instant;

use crate::registry::Histogram;

/// Guard object returned by [`crate::Telemetry::span`].
#[derive(Debug)]
pub struct Span {
    wall: Histogram,
    sim: Histogram,
    started: Option<Instant>,
    sim_seconds: f64,
}

impl Span {
    pub(crate) fn new(wall: Histogram, sim: Histogram, enabled: bool) -> Self {
        Span {
            wall,
            sim,
            started: if enabled { Some(Instant::now()) } else { None },
            sim_seconds: 0.0,
        }
    }

    /// A span that records nothing; used by disabled telemetry handles.
    pub fn noop() -> Self {
        Span {
            wall: Histogram::noop(),
            sim: Histogram::noop(),
            started: None,
            sim_seconds: 0.0,
        }
    }

    /// Attribute `seconds` of simulated-clock time to this span.
    pub fn add_sim_seconds(&mut self, seconds: f64) {
        if self.started.is_some() && seconds > 0.0 {
            self.sim_seconds += seconds;
        }
    }

    /// Simulated seconds accumulated so far.
    pub fn sim_seconds(&self) -> f64 {
        self.sim_seconds
    }

    /// Explicitly end the span (equivalent to dropping it).
    pub fn finish(self) {}

    /// Discard the span without recording anything — for guards opened
    /// speculatively around work that turned out not to happen (e.g. the
    /// end-of-stream buffer refill that finds no tuples).
    pub fn cancel(mut self) {
        self.started = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(started) = self.started.take() {
            self.wall.record(started.elapsed().as_secs_f64());
            self.sim.record(self.sim_seconds);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn span_records_wall_and_sim_on_drop() {
        let tel = Telemetry::enabled();
        {
            let mut span = tel.span("loader.fill");
            span.add_sim_seconds(0.25);
            span.add_sim_seconds(0.50);
            assert!((span.sim_seconds() - 0.75).abs() < 1e-12);
        }
        let snap = tel.snapshot();
        let sim = snap
            .metrics
            .histograms
            .iter()
            .find(|(name, _)| name == "loader.fill.sim_seconds")
            .map(|(_, h)| h.clone())
            .expect("sim histogram registered");
        assert_eq!(sim.count, 1);
        assert!((sim.sum - 0.75).abs() < 1e-12);
        let wall = snap
            .metrics
            .histograms
            .iter()
            .find(|(name, _)| name == "loader.fill.wall_seconds")
            .map(|(_, h)| h.clone())
            .expect("wall histogram registered");
        assert_eq!(wall.count, 1);
        assert!(wall.sum >= 0.0);
    }

    #[test]
    fn cancelled_span_records_nothing() {
        let tel = Telemetry::enabled();
        let mut span = tel.span("loader.fill");
        span.add_sim_seconds(1.0);
        span.cancel();
        assert!(tel
            .snapshot()
            .metrics
            .histograms
            .iter()
            .all(|(_, h)| h.count == 0));
    }

    #[test]
    fn disabled_span_records_nothing() {
        let tel = Telemetry::disabled();
        {
            let mut span = tel.span("loader.fill");
            span.add_sim_seconds(1.0);
            assert_eq!(span.sim_seconds(), 0.0);
        }
        assert!(tel.snapshot().metrics.histograms.is_empty());
    }
}
