//! Structured per-epoch event log.
//!
//! Events are `(sequence, epoch, name, value)` tuples appended by the
//! executor and trainers: blocks fetched, cache hits/misses, retries,
//! faults skipped, tuples buffered, gradient steps. The log is bounded so
//! a long run cannot grow memory without limit; overflow is counted, not
//! silently ignored.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Default maximum retained events per log.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// One recorded observation tied to a training epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (0-based, pre-overflow ordering).
    pub seq: u64,
    /// Epoch the observation belongs to.
    pub epoch: u64,
    /// Dotted metric-style name, e.g. `db.epoch.io_seconds`.
    pub name: String,
    pub value: f64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Bounded append-only event log.
#[derive(Debug)]
pub struct EventLog {
    events: Mutex<Vec<Event>>,
    capacity: usize,
    next_seq: AtomicU64,
    dropped: AtomicU64,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            events: Mutex::new(Vec::new()),
            capacity,
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn record(&self, epoch: u64, name: &str, value: f64) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut events = lock(&self.events);
        if events.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(Event {
            seq,
            epoch,
            name: name.to_string(),
            value,
        });
    }

    /// Copy of all retained events, in append order.
    pub fn events(&self) -> Vec<Event> {
        lock(&self.events).clone()
    }

    /// Retained events for one epoch.
    pub fn events_for_epoch(&self, epoch: u64) -> Vec<Event> {
        lock(&self.events)
            .iter()
            .filter(|e| e.epoch == epoch)
            .cloned()
            .collect()
    }

    pub fn len(&self) -> usize {
        lock(&self.events).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn clear(&self) {
        lock(&self.events).clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_sequence_numbers() {
        let log = EventLog::default();
        log.record(0, "db.epoch.tuples", 100.0);
        log.record(1, "db.epoch.tuples", 100.0);
        log.record(1, "db.epoch.io_seconds", 2.5);
        let events = log.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[2].name, "db.epoch.io_seconds");
        assert_eq!(log.events_for_epoch(1).len(), 2);
    }

    #[test]
    fn bounded_capacity_counts_drops() {
        let log = EventLog::with_capacity(2);
        for i in 0..5 {
            log.record(0, "e", i as f64);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }
}
