//! Exporters: hand-rolled JSON snapshot and Prometheus-style text
//! exposition. No serde — the workspace telemetry core stays
//! dependency-free, and the output shapes are small and stable.

use crate::registry::{HistogramSnapshot, BUCKET_BOUNDS};
use crate::TelemetrySnapshot;

/// Escape a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON-legal number (`NaN`/`inf` become `0`).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Trailing-zero-free but always valid JSON.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = BUCKET_BOUNDS
        .iter()
        .zip(h.buckets.iter())
        .map(|(bound, count)| format!("{{\"le\":{},\"count\":{}}}", json_f64(*bound), count))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"buckets\":[{}]}}",
        h.count,
        json_f64(h.sum),
        json_f64(h.min),
        json_f64(h.max),
        json_f64(h.mean()),
        buckets.join(",")
    )
}

/// Serialise a full snapshot as a single JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{...},"events":[...],"dropped_events":N}`.
pub fn to_json(snapshot: &TelemetrySnapshot) -> String {
    let counters: Vec<String> = snapshot
        .metrics
        .counters
        .iter()
        .map(|(name, v)| format!("\"{}\":{}", json_escape(name), v))
        .collect();
    let gauges: Vec<String> = snapshot
        .metrics
        .gauges
        .iter()
        .map(|(name, v)| format!("\"{}\":{}", json_escape(name), json_f64(*v)))
        .collect();
    let histograms: Vec<String> = snapshot
        .metrics
        .histograms
        .iter()
        .map(|(name, h)| format!("\"{}\":{}", json_escape(name), histogram_json(h)))
        .collect();
    let events: Vec<String> = snapshot
        .events
        .iter()
        .map(|e| {
            format!(
                "{{\"seq\":{},\"epoch\":{},\"name\":\"{}\",\"value\":{}}}",
                e.seq,
                e.epoch,
                json_escape(&e.name),
                json_f64(e.value)
            )
        })
        .collect();
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}},\"events\":[{}],\"dropped_events\":{}}}",
        counters.join(","),
        gauges.join(","),
        histograms.join(","),
        events.join(","),
        snapshot.dropped_events
    )
}

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Serialise counters, gauges and histograms in Prometheus text
/// exposition format (`# TYPE` lines plus samples; histograms expand to
/// cumulative `_bucket{le=...}`, `_sum` and `_count` series).
pub fn to_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.metrics.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snapshot.metrics.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snapshot.metrics.histograms {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for (bound, count) in BUCKET_BOUNDS.iter().zip(h.buckets.iter()) {
            cumulative += count;
            out.push_str(&format!("{n}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n", h.sum));
        out.push_str(&format!("{n}_count {}\n", h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_f64_is_always_numeric() {
        assert_eq!(super::json_f64(2.0), "2.0");
        assert_eq!(super::json_f64(2.5), "2.5");
        assert_eq!(super::json_f64(f64::NAN), "0.0");
        assert_eq!(super::json_f64(f64::INFINITY), "0.0");
    }

    #[test]
    fn json_snapshot_contains_all_sections() {
        let tel = Telemetry::enabled();
        tel.counter("io.reads").add(3);
        tel.gauge("io.seconds").set(1.5);
        tel.histogram("fill.seconds").record(0.02);
        tel.event(0, "db.epoch.tuples", 100.0);
        let json = tel.json();
        assert!(json.contains("\"io.reads\":3"));
        assert!(json.contains("\"io.seconds\":1.5"));
        assert!(json.contains("\"fill.seconds\":{\"count\":1"));
        assert!(json.contains("\"name\":\"db.epoch.tuples\""));
        assert!(json.contains("\"dropped_events\":0"));
        // Balanced braces as a cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets() {
        let tel = Telemetry::enabled();
        tel.counter("io.reads").add(3);
        tel.histogram("fill.seconds").record(0.0005);
        tel.histogram("fill.seconds").record(0.02);
        let text = tel.prometheus();
        assert!(text.contains("# TYPE io_reads counter\nio_reads 3\n"));
        assert!(text.contains("fill_seconds_bucket{le=\"0.001\"} 1\n"));
        assert!(text.contains("fill_seconds_bucket{le=\"0.05\"} 2\n"));
        assert!(text.contains("fill_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("fill_seconds_count 2\n"));
    }
}
