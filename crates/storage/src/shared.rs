//! Interior-synchronized storage handles for a shared engine.
//!
//! The paper runs inside PostgreSQL, where many client backends share one
//! buffer manager and one storage device. This module provides that shape:
//! a [`SharedDevice`] / [`SharedBufferPool`] pair owns the engine-wide
//! [`SimDevice`] and [`BufferPool`] behind mutexes, and each connection
//! holds a lightweight [`DeviceHandle`] / [`PoolHandle`] through which all
//! of its I/O flows.
//!
//! Handles add the per-connection state a shared engine needs:
//!
//! * **Local statistics** — every access accumulates the device/pool stats
//!   delta it caused into the handle, so a session's `EXPLAIN ANALYZE` and
//!   fill accounting see only their own I/O while the engine totals keep
//!   aggregating underneath.
//! * **Per-connection fault plans** — a handle-held [`FaultInjector`] is
//!   swapped onto the device for the duration of each access and swapped
//!   back out after, so one session's injected faults never strike another
//!   session's reads.
//! * **Per-connection telemetry** — likewise, the handle's [`Telemetry`]
//!   registry is bound to the device for the duration of each access, so
//!   `storage.device.*` counters mirror into the session that caused them.
//!
//! Determinism note: the trained model depends only on the tuple stream
//! order (table contents + RNG seeds), never on device timing or cache
//! residency, so sessions sharing one device produce models bit-identical
//! to their serial counterparts — only the I/O clocks observe the sharing.

use crate::bufmgr::{BufferPool, BufferPoolStats};
use crate::device::{DeviceProfile, IoStats, SimDevice};
use crate::fault::{FaultInjector, FaultPlan};
use crate::retry::RetryPolicy;
use crate::table::Table;
use crate::tuple::Tuple;
use crate::Result;
use corgipile_telemetry::Telemetry;
use std::sync::{Arc, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned lock means another session panicked mid-access; the
    // device/pool state itself is a plain counter structure and stays
    // coherent, so keep serving the remaining sessions.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The engine-owned side of a shared [`SimDevice`]: cheap to clone, hands
/// out per-connection [`DeviceHandle`]s.
#[derive(Debug, Clone)]
pub struct SharedDevice {
    inner: Arc<Mutex<SimDevice>>,
}

impl SharedDevice {
    /// Wrap a device for sharing. The device's currently attached telemetry
    /// becomes the *resting* registry: it receives mirrors only for access
    /// made outside any handle.
    pub fn new(dev: SimDevice) -> Self {
        SharedDevice {
            inner: Arc::new(Mutex::new(dev)),
        }
    }

    /// A fresh connection handle. The handle starts with the device's
    /// resting telemetry, no fault plan, and zeroed local stats.
    pub fn handle(&self) -> DeviceHandle {
        let telemetry = lock(&self.inner).telemetry().clone();
        DeviceHandle {
            inner: self.inner.clone(),
            injector: None,
            telemetry,
            local: IoStats::default(),
        }
    }

    /// Engine-wide statistics snapshot (all connections combined).
    pub fn stats(&self) -> IoStats {
        lock(&self.inner).stats().clone()
    }

    /// The device profile.
    pub fn profile(&self) -> DeviceProfile {
        lock(&self.inner).profile().clone()
    }
}

/// A per-connection view of a shared (or private) [`SimDevice`].
///
/// All device access goes through [`DeviceHandle::with`], which takes the
/// engine lock, installs this connection's fault injector and telemetry,
/// runs the access, and accumulates the stats delta into the handle's
/// local [`IoStats`].
#[derive(Debug)]
pub struct DeviceHandle {
    inner: Arc<Mutex<SimDevice>>,
    /// This connection's fault plan, installed on the device only for the
    /// duration of each access.
    injector: Option<FaultInjector>,
    /// This connection's telemetry registry, bound to the device only for
    /// the duration of each access.
    telemetry: Telemetry,
    /// I/O caused through this handle (deltas of the shared counters).
    local: IoStats,
}

impl DeviceHandle {
    /// Wrap an exclusively owned device (single-connection use: tests,
    /// tools). The handle inherits the device's attached telemetry.
    pub fn private(dev: SimDevice) -> Self {
        let telemetry = dev.telemetry().clone();
        DeviceHandle {
            inner: Arc::new(Mutex::new(dev)),
            injector: None,
            telemetry,
            local: IoStats::default(),
        }
    }

    /// Run `f` against the device with this connection's fault plan and
    /// telemetry installed, accumulating the stats delta locally.
    pub fn with<R>(&mut self, f: impl FnOnce(&mut SimDevice) -> R) -> R {
        let mut dev = lock(&self.inner);
        let resting_injector = dev.clear_fault_injector();
        if let Some(inj) = self.injector.take() {
            dev.set_fault_injector(inj);
        }
        let resting_telemetry = dev.telemetry().clone();
        dev.set_telemetry(self.telemetry.clone());
        let before = dev.stats().clone();
        let out = f(&mut dev);
        self.local.add_delta(&before, dev.stats());
        // Swap this connection's state back out; injector bookkeeping
        // (consumed transients etc.) survives in the handle.
        self.injector = dev.clear_fault_injector();
        if let Some(inj) = resting_injector {
            dev.set_fault_injector(inj);
        }
        dev.set_telemetry(resting_telemetry);
        out
    }

    /// I/O caused through this handle.
    pub fn stats(&self) -> &IoStats {
        &self.local
    }

    /// Engine-wide statistics (all connections combined).
    pub fn global_stats(&self) -> IoStats {
        lock(&self.inner).stats().clone()
    }

    /// The device profile.
    pub fn profile(&self) -> DeviceProfile {
        lock(&self.inner).profile().clone()
    }

    /// Charge explicit simulated seconds (buffering costs etc.).
    pub fn charge_seconds(&mut self, seconds: f64) {
        self.with(|dev| dev.charge_seconds(seconds));
    }

    /// Install a fault plan for this connection only.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
    }

    /// Install a fault injector for this connection only.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// This connection's fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Remove and return this connection's fault injector.
    pub fn clear_fault_injector(&mut self) -> Option<FaultInjector> {
        self.injector.take()
    }

    /// Bind this connection's telemetry registry; device counters caused
    /// through this handle mirror into it from now on.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The bound telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

/// The engine-owned side of a shared [`BufferPool`]: cheap to clone, hands
/// out per-connection [`PoolHandle`]s.
#[derive(Clone)]
pub struct SharedBufferPool {
    inner: Arc<Mutex<BufferPool>>,
}

impl SharedBufferPool {
    /// A shared pool of `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        SharedBufferPool {
            inner: Arc::new(Mutex::new(BufferPool::new(capacity_bytes))),
        }
    }

    /// A fresh connection handle with zeroed local stats.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            inner: self.inner.clone(),
            local: BufferPoolStats::default(),
        }
    }

    /// Engine-wide pool statistics (all connections combined).
    pub fn stats(&self) -> BufferPoolStats {
        lock(&self.inner).stats()
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        lock(&self.inner).capacity()
    }

    /// Mirror the pool's counters into `telemetry` (engine-level
    /// aggregation across every connection).
    pub fn set_telemetry(&self, telemetry: &Telemetry) {
        lock(&self.inner).set_telemetry(telemetry);
    }
}

/// A per-connection view of a shared (or private) [`BufferPool`].
///
/// The pool lock is released while a miss reads through the device, so
/// concurrent sessions overlap their device reads; two sessions missing
/// the same block may both read it (the second admit is a no-op), exactly
/// like PostgreSQL backends racing on a buffer.
pub struct PoolHandle {
    inner: Arc<Mutex<BufferPool>>,
    local: BufferPoolStats,
}

impl PoolHandle {
    /// Wrap an exclusively owned pool (per-query `shared_buffers`).
    pub fn private(pool: BufferPool) -> Self {
        PoolHandle {
            inner: Arc::new(Mutex::new(pool)),
            local: BufferPoolStats::default(),
        }
    }

    /// Fetch a block through the pool: hit → shared handle at zero device
    /// cost; miss → retried random block read through `dev` (pool lock
    /// released during the read), then admit.
    pub fn read_block_retry(
        &mut self,
        table: &Table,
        block: crate::block::BlockId,
        dev: &mut DeviceHandle,
        policy: &RetryPolicy,
    ) -> Result<Arc<Vec<Tuple>>> {
        let table_id = table.config().table_id;
        if let Some(tuples) = lock(&self.inner).lookup(table_id, block) {
            self.local.hits += 1;
            return Ok(tuples);
        }
        self.local.misses += 1;
        let tuples = Arc::new(dev.with(|d| table.read_block_retry(block, d, policy))?);
        let bytes = table.block(block)?.bytes;
        lock(&self.inner).admit_block(table_id, block, tuples.clone(), bytes);
        Ok(tuples)
    }

    /// Pool traffic caused through this handle (evictions are a global
    /// property and stay at zero here; see [`PoolHandle::global_stats`]).
    pub fn stats(&self) -> BufferPoolStats {
        self.local
    }

    /// Engine-wide pool statistics (all connections combined).
    pub fn global_stats(&self) -> BufferPoolStats {
        lock(&self.inner).stats()
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        lock(&self.inner).capacity()
    }

    /// Mirror the underlying pool's counters into `telemetry`. Intended for
    /// private pools; on a shared pool this redirects the engine-level
    /// mirror.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        lock(&self.inner).set_telemetry(telemetry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Access;
    use crate::table::TableConfig;

    fn table(id: u32, n: u64) -> Table {
        let cfg = TableConfig::new(format!("t{id}"), id).with_block_bytes(8192);
        Table::from_tuples(cfg, (0..n).map(|i| Tuple::dense(i, vec![i as f32; 8], 1.0))).unwrap()
    }

    #[test]
    fn handle_stats_are_local_engine_stats_are_global() {
        let shared = SharedDevice::new(SimDevice::hdd(0));
        let mut a = shared.handle();
        let mut b = shared.handle();
        a.with(|d| d.read(Some(1), 1000, Access::Random, None));
        b.with(|d| d.read(Some(2), 2000, Access::Random, None));
        b.with(|d| d.read(Some(3), 3000, Access::Random, None));
        assert_eq!(a.stats().device_bytes, 1000);
        assert_eq!(b.stats().device_bytes, 5000);
        assert_eq!(shared.stats().device_bytes, 6000);
        assert_eq!(shared.stats().random_reads, 3);
    }

    #[test]
    fn fault_plans_are_per_handle() {
        let t = table(3, 200);
        let shared = SharedDevice::new(SimDevice::hdd(0));
        let mut faulty = shared.handle();
        let mut clean = shared.handle();
        faulty.set_fault_plan(FaultPlan::new(1).with_permanent(3, 0));
        // The clean handle reads block 0 without seeing the other
        // connection's fault plan.
        clean.with(|d| t.read_block(0, d)).unwrap();
        let err = faulty.with(|d| t.read_block(0, d));
        assert!(err.is_err(), "the faulty handle's own plan must strike");
        // The injector state survived the swap cycle.
        assert!(faulty.fault_injector().is_some());
        assert_eq!(faulty.stats().faults, 1);
        assert_eq!(clean.stats().faults, 0);
    }

    #[test]
    fn per_handle_telemetry_mirrors_only_own_io() {
        let shared = SharedDevice::new(SimDevice::hdd(0));
        let mut a = shared.handle();
        let mut b = shared.handle();
        let tel_a = Telemetry::enabled();
        let tel_b = Telemetry::enabled();
        a.set_telemetry(tel_a.clone());
        b.set_telemetry(tel_b.clone());
        a.with(|d| d.read(Some(1), 1000, Access::Random, None));
        b.with(|d| d.read(Some(2), 2000, Access::Random, None));
        assert_eq!(tel_a.counter("storage.device.device_bytes").get(), 1000);
        assert_eq!(tel_b.counter("storage.device.device_bytes").get(), 2000);
    }

    #[test]
    fn private_handle_behaves_like_the_raw_device() {
        let mut raw = SimDevice::hdd(0);
        let t_raw = raw.read(Some(1), 5000, Access::Random, None);
        let mut handle = DeviceHandle::private(SimDevice::hdd(0));
        let t_h = handle.with(|d| d.read(Some(1), 5000, Access::Random, None));
        assert_eq!(t_raw, t_h);
        assert_eq!(raw.stats(), handle.stats());
        assert_eq!(handle.stats(), &handle.global_stats());
    }

    #[test]
    fn cross_handle_pool_hits() {
        let t = table(1, 400);
        let shared = SharedBufferPool::new(1 << 20);
        let dev = SharedDevice::new(SimDevice::hdd(0));
        let mut warm = shared.handle();
        let mut warm_dev = dev.handle();
        let policy = RetryPolicy::default();
        for b in 0..t.num_blocks() {
            warm.read_block_retry(&t, b, &mut warm_dev, &policy)
                .unwrap();
        }
        assert_eq!(warm.stats().hits, 0);
        let mut cold = shared.handle();
        let mut cold_dev = dev.handle();
        for b in 0..t.num_blocks() {
            cold.read_block_retry(&t, b, &mut cold_dev, &policy)
                .unwrap();
        }
        assert_eq!(
            cold.stats().misses,
            0,
            "second connection must hit the shared pool"
        );
        assert_eq!(cold.stats().hits as usize, t.num_blocks());
        assert_eq!(
            cold_dev.stats().device_bytes,
            0,
            "hits never touch the device"
        );
        let global = shared.stats();
        assert_eq!(global.hits, cold.stats().hits);
        assert_eq!(global.misses, warm.stats().misses);
        assert!(global.hit_ratio() > 0.0);
    }

    #[test]
    fn handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<DeviceHandle>();
        assert_send::<PoolHandle>();
        assert_send::<SharedDevice>();
        assert_send::<SharedBufferPool>();
    }
}
