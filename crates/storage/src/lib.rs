//! # corgipile-storage
//!
//! Block-addressable heap storage substrate for the CorgiPile reproduction.
//!
//! The SIGMOD 2022 CorgiPile paper integrates its shuffle strategy into
//! PostgreSQL at the *physical* level: tuples live in slotted heap pages,
//! contiguous runs of pages form *blocks* (the unit of random access), and
//! all I/O goes through a buffer manager over HDD/SSD. This crate rebuilds
//! that substrate from scratch:
//!
//! * [`mod@tuple`] — the training-tuple format (`⟨id, features, label⟩`, dense or
//!   sparse), with a compact binary encoding;
//! * [`page`] — fixed-size slotted pages, PostgreSQL-style;
//! * [`block`] — block metadata (a block is a batch of contiguous pages, the
//!   granularity of CorgiPile's block-level shuffle);
//! * [`device`] — I/O cost models for HDD, SSD and memory, with an OS page
//!   cache model, driving a deterministic simulated clock (substitutes for
//!   the paper's physical Alibaba Cloud disks);
//! * [`table`] — append-only heap tables assembled from pages and carved
//!   into blocks, supporting sequential scans and random block reads;
//! * [`buffer`] — in-memory tuple buffers used by tuple-level shuffling,
//!   including the double-buffering cost model from the paper's §6.3;
//! * [`fault`] — seeded, deterministic fault injection (transient and
//!   permanent read failures, checksum corruption, latency spikes, and
//!   write-path faults: retryable write failures, torn writes, and named
//!   crash points);
//! * [`codec`] — the shared frame/field/container codec behind the
//!   `CORGIWL1` logs and `CORGIMS1` snapshots;
//! * [`wal`] — append-only, CRC-framed `CORGIWL1` write-ahead log with
//!   longest-valid-prefix recovery, backing the durable model store and the
//!   per-table append log;
//! * [`append`] — versioned [`TableSnapshot`]s plus the WAL-backed
//!   [`AppendableTable`] writer powering `INSERT` and `TRAIN … CONTINUOUS`;
//! * [`retry`] — bounded exponential-backoff retry shared by all block
//!   readers, charging backoff to the simulated clock;
//! * [`shared`] — interior-synchronized [`SharedDevice`]/[`SharedBufferPool`]
//!   engine objects handing out per-connection [`DeviceHandle`]s and
//!   [`PoolHandle`]s with local stats, fault plans and telemetry scopes;
//! * telemetry — [`SimDevice`] and [`BufferPool`] mirror their counters
//!   into a shared [`Telemetry`] handle (re-exported from
//!   `corgipile-telemetry`) when one is attached via `set_telemetry`;
//! * [`crc`] — dependency-free CRC-32 backing the `CORGIPL3` checksummed
//!   heap format and the training-checkpoint blob.
//!
//! Everything is deterministic: "time" is the simulated clock advanced by
//! the device cost model, so experiments reproduce bit-for-bit across runs.

pub mod append;
pub mod block;
pub mod buffer;
pub mod bufmgr;
pub mod codec;
pub mod crc;
pub mod device;
pub mod error;
pub mod fault;
pub mod page;
pub mod persist;
pub mod pipeline;
pub mod retry;
pub mod shared;
pub mod table;
pub mod tuple;
pub mod wal;

pub use append::{AppendableTable, TableSnapshot, RT_TABLE_ROWS, RT_TABLE_SEAL};
pub use block::{BlockId, BlockMeta};
pub use buffer::{DoubleBufferModel, TupleBuffer, INITIAL_RESERVATION_CAP};
pub use bufmgr::{BufferPool, BufferPoolStats};
pub use codec::{
    decode_container, encode_container, encode_frame, put_bytes, FieldReader, WAL_FRAME_OVERHEAD,
};
pub use crc::crc32;
pub use device::{Access, CacheConfig, DeviceProfile, IoStats, SimDevice};
pub use error::StorageError;
pub use fault::{
    sites, FaultInjector, FaultKind, FaultPlan, FaultStats, ReadOutcome, WriteFault, WriteOutcome,
};
pub use page::{Page, PAGE_SIZE};
pub use persist::{
    atomic_write_bytes, atomic_write_bytes_faulted, load_table, save_table, save_table_faulted,
    FileBlockMeta, FileTable,
};
pub use pipeline::{
    batch_grow_count, block_refs, run_epoch_pipeline, PipelineError, PipelineReport,
    PipelineSender, TupleBatch, TupleRef, PIPELINE_SLOTS,
};
pub use retry::RetryPolicy;
pub use shared::{DeviceHandle, PoolHandle, SharedBufferPool, SharedDevice};
pub use table::{Table, TableBuilder, TableConfig};
pub use tuple::{
    dense_axpy, dense_axpy_scalar, dense_dot, dense_dot_scalar, tuple_clone_count, FeatureVec,
    Tuple, TupleId, DENSE_LANES,
};
pub use wal::{scan_valid_prefix, Wal, WalRecord, WAL_MAGIC, WAL_MAX_PAYLOAD};

// Telemetry types appear in storage APIs (`SimDevice::set_telemetry`);
// re-export them so downstream crates need not depend on the telemetry
// crate directly for the common cases.
pub use corgipile_telemetry::{Counter, Telemetry, TelemetrySnapshot};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
