//! # corgipile-storage
//!
//! Block-addressable heap storage substrate for the CorgiPile reproduction.
//!
//! The SIGMOD 2022 CorgiPile paper integrates its shuffle strategy into
//! PostgreSQL at the *physical* level: tuples live in slotted heap pages,
//! contiguous runs of pages form *blocks* (the unit of random access), and
//! all I/O goes through a buffer manager over HDD/SSD. This crate rebuilds
//! that substrate from scratch:
//!
//! * [`tuple`] — the training-tuple format (`⟨id, features, label⟩`, dense or
//!   sparse), with a compact binary encoding;
//! * [`page`] — fixed-size slotted pages, PostgreSQL-style;
//! * [`block`] — block metadata (a block is a batch of contiguous pages, the
//!   granularity of CorgiPile's block-level shuffle);
//! * [`device`] — I/O cost models for HDD, SSD and memory, with an OS page
//!   cache model, driving a deterministic simulated clock (substitutes for
//!   the paper's physical Alibaba Cloud disks);
//! * [`table`] — append-only heap tables assembled from pages and carved
//!   into blocks, supporting sequential scans and random block reads;
//! * [`buffer`] — in-memory tuple buffers used by tuple-level shuffling,
//!   including the double-buffering cost model from the paper's §6.3.
//!
//! Everything is deterministic: "time" is the simulated clock advanced by
//! the device cost model, so experiments reproduce bit-for-bit across runs.

pub mod block;
pub mod buffer;
pub mod bufmgr;
pub mod device;
pub mod error;
pub mod page;
pub mod persist;
pub mod table;
pub mod tuple;

pub use block::{BlockId, BlockMeta};
pub use buffer::{DoubleBufferModel, TupleBuffer};
pub use bufmgr::{BufferPool, BufferPoolStats};
pub use device::{Access, CacheConfig, DeviceProfile, IoStats, SimDevice};
pub use error::StorageError;
pub use page::{Page, PAGE_SIZE};
pub use persist::{load_table, save_table, FileBlockMeta, FileTable};
pub use table::{Table, TableBuilder, TableConfig};
pub use tuple::{FeatureVec, Tuple, TupleId};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
