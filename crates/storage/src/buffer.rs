//! In-memory tuple buffers and the double-buffering cost model.
//!
//! CorgiPile's tuple-level shuffle needs an in-memory buffer holding `n`
//! blocks (1–10 % of the data set). [`TupleBuffer`] is that buffer. The
//! paper's §6.3 optimization overlaps buffer filling with SGD via *double
//! buffering* — two buffers swapped between a loader thread and a consumer
//! thread; [`DoubleBufferModel`] computes the resulting pipelined epoch time
//! from per-fill I/O and compute costs, which is how the simulated
//! experiments account the ~11.7 % residual overhead of Figure 13.

use crate::tuple::Tuple;

/// Upper bound on the *initial* `Vec` reservation made by
/// [`TupleBuffer::with_capacity`].
///
/// `capacity_tuples` is a logical limit derived from the buffered-block
/// byte budget, and for small tuples it can run into the hundreds of
/// millions; reserving that eagerly would commit gigabytes before a single
/// tuple arrives. Reservations are therefore capped at this many slots
/// (2^20); a buffer whose capacity exceeds the cap still accepts tuples up
/// to its full `capacity_tuples` — the vector simply grows on demand past
/// the initial reservation.
pub const INITIAL_RESERVATION_CAP: usize = 1 << 20;

/// A bounded in-memory tuple buffer.
#[derive(Debug, Clone, Default)]
pub struct TupleBuffer {
    tuples: Vec<Tuple>,
    capacity_tuples: usize,
}

impl TupleBuffer {
    /// Create a buffer able to hold `capacity_tuples` tuples.
    ///
    /// At most [`INITIAL_RESERVATION_CAP`] slots are reserved up front; the
    /// logical capacity is unaffected (see the constant's docs).
    pub fn with_capacity(capacity_tuples: usize) -> Self {
        TupleBuffer {
            tuples: Vec::with_capacity(capacity_tuples.min(INITIAL_RESERVATION_CAP)),
            capacity_tuples,
        }
    }

    /// Current number of buffered tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuples are buffered.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Tuple capacity.
    pub fn capacity(&self) -> usize {
        self.capacity_tuples
    }

    /// Remaining room.
    pub fn free(&self) -> usize {
        self.capacity_tuples.saturating_sub(self.tuples.len())
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.free() == 0
    }

    /// Push one tuple; returns `false` (dropping nothing) if full.
    pub fn push(&mut self, t: Tuple) -> bool {
        if self.is_full() {
            return false;
        }
        self.tuples.push(t);
        true
    }

    /// Extend with as many tuples from `iter` as fit; returns how many were
    /// accepted.
    pub fn fill_from<I: IntoIterator<Item = Tuple>>(&mut self, iter: I) -> usize {
        let mut n = 0;
        for t in iter {
            if !self.push(t) {
                break;
            }
            n += 1;
        }
        n
    }

    /// Shuffle the buffered tuples in place with the supplied RNG-driven
    /// Fisher–Yates swaps. The closure must return a value in `0..=i`.
    pub fn shuffle_with<F: FnMut(usize) -> usize>(&mut self, mut pick: F) {
        for i in (1..self.tuples.len()).rev() {
            let j = pick(i);
            debug_assert!(j <= i);
            self.tuples.swap(i, j);
        }
    }

    /// Drain all tuples out of the buffer in their current order.
    pub fn drain(&mut self) -> Vec<Tuple> {
        std::mem::take(&mut self.tuples)
    }

    /// Borrow the buffered tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Clear the buffer.
    pub fn clear(&mut self) {
        self.tuples.clear();
    }
}

/// Analytic pipelined-epoch model for single vs double buffering.
///
/// An epoch consists of `F` buffer fills; fill `i` costs `io[i]` seconds of
/// loading (block reads + buffer copy + shuffle) and `compute[i]` seconds of
/// SGD over the filled buffer.
#[derive(Debug, Clone, Copy, Default)]
pub struct DoubleBufferModel;

impl DoubleBufferModel {
    /// Serial (single-buffer) epoch time: `Σ io + Σ compute`.
    pub fn single_buffer(io: &[f64], compute: &[f64]) -> f64 {
        io.iter().sum::<f64>() + compute.iter().sum::<f64>()
    }

    /// Pipelined (double-buffer) epoch time.
    ///
    /// With two buffers, fill `i+1` overlaps SGD over buffer `i`; the
    /// pipeline finishes at
    /// `io[0] + Σ_{i≥1} max(io[i], compute[i-1]) + compute[last]`.
    pub fn double_buffer(io: &[f64], compute: &[f64]) -> f64 {
        assert_eq!(io.len(), compute.len(), "one compute slot per fill");
        if io.is_empty() {
            return 0.0;
        }
        let mut t = io[0];
        for i in 1..io.len() {
            t += io[i].max(compute[i - 1]);
        }
        t + compute[compute.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use proptest::prelude::*;

    fn t(id: u64) -> Tuple {
        Tuple::dense(id, vec![id as f32], 1.0)
    }

    #[test]
    fn buffer_respects_capacity() {
        let mut b = TupleBuffer::with_capacity(3);
        assert!(b.is_empty());
        assert!(b.push(t(0)));
        assert!(b.push(t(1)));
        assert!(b.push(t(2)));
        assert!(b.is_full());
        assert!(!b.push(t(3)));
        assert_eq!(b.len(), 3);
        assert_eq!(b.free(), 0);
    }

    #[test]
    fn fill_from_stops_at_capacity() {
        let mut b = TupleBuffer::with_capacity(5);
        let n = b.fill_from((0..10).map(t));
        assert_eq!(n, 5);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn over_cap_buffer_still_fills_to_full_capacity() {
        // A logical capacity above INITIAL_RESERVATION_CAP only limits the
        // eager reservation, never how many tuples the buffer accepts.
        let cap = INITIAL_RESERVATION_CAP + 3;
        let mut b = TupleBuffer::with_capacity(cap);
        assert_eq!(b.capacity(), cap);
        let accepted =
            b.fill_from((0..(cap as u64 + 10)).map(|id| Tuple::dense(id, Vec::new(), 0.0)));
        assert_eq!(accepted, cap);
        assert_eq!(b.len(), cap);
        assert!(b.is_full());
        assert_eq!(b.tuples()[cap - 1].id, cap as u64 - 1);
    }

    #[test]
    fn shuffle_with_identity_is_noop() {
        let mut b = TupleBuffer::with_capacity(4);
        b.fill_from((0..4).map(t));
        b.shuffle_with(|i| i);
        let ids: Vec<u64> = b.tuples().iter().map(|x| x.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn shuffle_with_reverse_like_picks_permutes() {
        let mut b = TupleBuffer::with_capacity(5);
        b.fill_from((0..5).map(t));
        b.shuffle_with(|_| 0);
        let mut ids: Vec<u64> = b.drain().into_iter().map(|x| x.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]); // a permutation
        assert!(b.is_empty());
    }

    #[test]
    fn double_buffer_beats_single_buffer() {
        let io = vec![1.0; 10];
        let compute = vec![1.0; 10];
        let single = DoubleBufferModel::single_buffer(&io, &compute);
        let double = DoubleBufferModel::double_buffer(&io, &compute);
        assert_eq!(single, 20.0);
        assert_eq!(double, 11.0); // 1 + 9*max(1,1) + 1
        assert!(double < single);
    }

    #[test]
    fn double_buffer_degenerate_cases() {
        assert_eq!(DoubleBufferModel::double_buffer(&[], &[]), 0.0);
        assert_eq!(DoubleBufferModel::double_buffer(&[2.0], &[3.0]), 5.0);
    }

    #[test]
    fn double_buffer_bound_by_dominant_stage() {
        // When I/O dominates, epoch ≈ total I/O + last compute.
        let io = vec![5.0; 4];
        let compute = vec![0.5; 4];
        let d = DoubleBufferModel::double_buffer(&io, &compute);
        assert!((d - (20.0 + 0.5)).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_double_never_worse_than_single(
            pairs in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 0..32)
        ) {
            let io: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let compute: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let s = DoubleBufferModel::single_buffer(&io, &compute);
            let d = DoubleBufferModel::double_buffer(&io, &compute);
            prop_assert!(d <= s + 1e-9);
            // And never better than the dominant stage alone.
            let io_total: f64 = io.iter().sum();
            let c_total: f64 = compute.iter().sum();
            prop_assert!(d + 1e-9 >= io_total.max(c_total));
        }

        #[test]
        fn prop_shuffle_is_permutation(n in 0usize..64, seed in any::<u64>()) {
            let mut b = TupleBuffer::with_capacity(n);
            b.fill_from((0..n as u64).map(t));
            let mut state = seed | 1;
            b.shuffle_with(|i| {
                // xorshift-ish deterministic picker
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % (i as u64 + 1)) as usize
            });
            let mut ids: Vec<u64> = b.tuples().iter().map(|x| x.id).collect();
            ids.sort_unstable();
            let expect: Vec<u64> = (0..n as u64).collect();
            prop_assert_eq!(ids, expect);
        }
    }
}
