//! Deterministic fault injection for storage reads.
//!
//! A production in-DB training system sees storage that fails: transient
//! read errors (cabling, firmware retries), permanently dead blocks,
//! checksum corruption, and latency spikes. [`FaultPlan`] describes a
//! seeded, fully deterministic schedule of such faults; [`FaultInjector`]
//! executes it against [`SimDevice`](crate::SimDevice) and
//! [`FileTable`](crate::FileTable) reads. Determinism means every test and
//! experiment that injects faults reproduces bit-for-bit.
//!
//! Faults are keyed by `(table_id, block)` — the same extent identity the
//! device cache uses — so a plan written for a table follows its blocks
//! through any reader (executor, loader, buffer pool).
//!
//! Write-path faults are keyed by **named write sites** (see [`sites`])
//! instead of blocks: a write site is a specific point in a write protocol
//! (before a WAL append, between append and fsync, mid-rename in an atomic
//! replace) where a real process can die. [`FaultInjector::on_write`]
//! decides, deterministically, whether a given visit to a site proceeds,
//! fails retryably ([`WriteFault::Failed`]), lands only a prefix of its
//! bytes ([`WriteFault::Torn`]), or kills the simulated process outright
//! ([`WriteFault::Crash`]).

use crate::error::StorageError;
use std::collections::{BTreeMap, HashMap};

/// One kind of injected fault, attached to a specific block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The next `failures` reads of the block fail with a retryable
    /// [`StorageError::ReadFailed`]; reads after that succeed.
    Transient {
        /// How many consecutive reads fail before the block recovers.
        failures: u32,
    },
    /// Every read of the block fails — the block is dead media.
    Permanent,
    /// Every read of the block returns a checksum mismatch (bit rot).
    Corruption,
    /// Reads succeed but cost `seconds` extra simulated time each.
    LatencySpike {
        /// Extra latency charged per read.
        seconds: f64,
    },
}

/// Well-known write-site names used by the storage write paths.
///
/// Each constant names a point in a write protocol where a crash leaves
/// observably different on-disk state. The crash-matrix harness iterates
/// [`sites::crash_sites`] to prove recovery from every one of them.
pub mod sites {
    /// Before a WAL record's bytes are appended: nothing of the record lands.
    pub const WAL_BEFORE_APPEND: &str = "wal.before_append";
    /// After the append but before fsync: the record's bytes are in the OS
    /// page cache only and are lost with the process.
    pub const WAL_AFTER_APPEND_BEFORE_FSYNC: &str = "wal.after_append_before_fsync";
    /// After the fsync: the record is durable; the crash loses nothing.
    pub const WAL_AFTER_FSYNC: &str = "wal.after_fsync";
    /// Between writing the temp sibling and renaming it over the target in
    /// [`atomic_write_bytes`](crate::persist::atomic_write_bytes): the old
    /// file survives intact.
    pub const ATOMIC_WRITE_MID_RENAME: &str = "atomic_write.mid_rename";
    /// Same window inside [`save_table`](crate::persist::save_table).
    pub const SAVE_TABLE_MID_RENAME: &str = "save_table.mid_rename";
    /// After a model-store snapshot is renamed in but before the WAL is
    /// truncated: both snapshot and full WAL exist (replay must be
    /// idempotent).
    pub const MODEL_STORE_POST_SNAPSHOT: &str = "model_store.post_snapshot";
    /// At the head of an `INSERT` statement's append, before any of its rows
    /// reach the table WAL: the whole unacknowledged statement is lost,
    /// previously-acked rows survive.
    pub const TABLE_APPEND_ROWS: &str = "table.append_rows";
    /// When the appendable table seals a full tail block (the seal marker's
    /// WAL append): the sealed rows were already fsynced by their own row
    /// records, so the crash loses nothing acknowledged.
    pub const TABLE_SEAL_BLOCK: &str = "table.seal_block";

    /// Every registered crash site, in deterministic order — the rows of the
    /// crash matrix.
    pub fn crash_sites() -> &'static [&'static str] {
        &[
            WAL_BEFORE_APPEND,
            WAL_AFTER_APPEND_BEFORE_FSYNC,
            WAL_AFTER_FSYNC,
            ATOMIC_WRITE_MID_RENAME,
            SAVE_TABLE_MID_RENAME,
            MODEL_STORE_POST_SNAPSHOT,
            TABLE_APPEND_ROWS,
            TABLE_SEAL_BLOCK,
        ]
    }
}

/// One kind of injected write fault, attached to a named write site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WriteFault {
    /// The next `failures` visits to the site fail with a retryable
    /// [`StorageError::WriteFailed`]; visits after that succeed. The
    /// write-path mirror of [`FaultKind::Transient`].
    Failed {
        /// How many consecutive writes fail before the site recovers.
        failures: u32,
    },
    /// The first visit to the site lands only `valid_bytes` of its payload
    /// and then the simulated process dies (a torn write *is* a crash — the
    /// partial bytes are only observable because nothing ran afterwards).
    Torn {
        /// How many payload bytes reach the medium before the tear.
        valid_bytes: usize,
    },
    /// The `hit`-th visit (1-based) to the site kills the simulated process
    /// with [`StorageError::Crashed`]. Earlier and later visits proceed.
    Crash {
        /// Which visit dies.
        hit: u64,
    },
}

/// A seeded, deterministic description of which reads fail and how.
///
/// Two layers compose:
///
/// * **Targeted faults** — explicit `(table_id, block) → FaultKind` entries,
///   for tests that need a specific failure in a specific place.
/// * **Random transient faults** — each device read independently fails
///   with probability `transient_rate`, derived from a hash of
///   `(seed, table_id, block, attempt)`. A `max_consecutive` cap bounds the
///   failure streak per block, so any retry policy allowing more attempts
///   than the cap is guaranteed to make progress.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    max_consecutive: u32,
    targeted: BTreeMap<(u32, usize), FaultKind>,
    writes: BTreeMap<String, WriteFault>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            max_consecutive: 0,
            targeted: BTreeMap::new(),
            writes: BTreeMap::new(),
        }
    }

    /// Fail the next `failures` reads of `(table_id, block)`, then recover.
    pub fn with_transient(mut self, table_id: u32, block: usize, failures: u32) -> Self {
        self.targeted
            .insert((table_id, block), FaultKind::Transient { failures });
        self
    }

    /// Make `(table_id, block)` permanently unreadable.
    pub fn with_permanent(mut self, table_id: u32, block: usize) -> Self {
        self.targeted
            .insert((table_id, block), FaultKind::Permanent);
        self
    }

    /// Make every read of `(table_id, block)` report checksum corruption.
    pub fn with_corruption(mut self, table_id: u32, block: usize) -> Self {
        self.targeted
            .insert((table_id, block), FaultKind::Corruption);
        self
    }

    /// Charge `seconds` of extra latency on every read of `(table_id, block)`.
    pub fn with_latency_spike(mut self, table_id: u32, block: usize, seconds: f64) -> Self {
        assert!(seconds >= 0.0, "latency spike must be non-negative");
        self.targeted
            .insert((table_id, block), FaultKind::LatencySpike { seconds });
        self
    }

    /// Fail each read independently with probability `rate`, never more than
    /// `max_consecutive` times in a row for the same block.
    pub fn with_random_transient(mut self, rate: f64, max_consecutive: u32) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.transient_rate = rate;
        self.max_consecutive = max_consecutive;
        self
    }

    /// Fail the next `failures` writes at `site` with a retryable
    /// [`StorageError::WriteFailed`], then recover.
    pub fn with_write_failed(mut self, site: &str, failures: u32) -> Self {
        self.writes
            .insert(site.to_string(), WriteFault::Failed { failures });
        self
    }

    /// Tear the first write at `site`: `valid_bytes` of the payload land,
    /// then the simulated process dies.
    pub fn with_torn_write(mut self, site: &str, valid_bytes: usize) -> Self {
        self.writes
            .insert(site.to_string(), WriteFault::Torn { valid_bytes });
        self
    }

    /// Kill the simulated process on the `hit`-th (1-based) visit to `site`.
    pub fn with_crash_point(mut self, site: &str, hit: u64) -> Self {
        assert!(hit >= 1, "crash-point hits are 1-based");
        self.writes
            .insert(site.to_string(), WriteFault::Crash { hit });
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.targeted.is_empty() && self.transient_rate == 0.0 && self.writes.is_empty()
    }
}

/// Counters of what a [`FaultInjector`] actually injected.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultStats {
    /// Transient read failures injected (targeted + random).
    pub transient_failures: u64,
    /// Permanent-fault read failures injected.
    pub permanent_failures: u64,
    /// Checksum-corruption errors injected.
    pub corruption_failures: u64,
    /// Latency spikes injected.
    pub latency_spikes: u64,
    /// Total extra seconds injected by latency spikes.
    pub injected_latency_seconds: f64,
    /// Retryable write failures injected.
    pub write_failures: u64,
    /// Torn writes injected.
    pub torn_writes: u64,
    /// Crash points fired.
    pub crash_points: u64,
}

impl FaultStats {
    /// Total injected read errors of any kind.
    pub fn total_failures(&self) -> u64 {
        self.transient_failures + self.permanent_failures + self.corruption_failures
    }

    /// Total injected write-path events (failures, tears, crashes).
    pub fn total_write_events(&self) -> u64 {
        self.write_failures + self.torn_writes + self.crash_points
    }
}

/// What the injector decided for one read attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadOutcome {
    /// The read proceeds normally.
    Ok,
    /// The read proceeds, but costs `0` extra seconds (latency spike).
    Delay(f64),
    /// The read fails with the given error.
    Fail(StorageError),
}

/// What the injector decided for one visit to a write site.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOutcome {
    /// The write proceeds normally.
    Ok,
    /// The write fails with the given (retryable) error.
    Fail(StorageError),
    /// Only `valid_bytes` of the payload land, then the process dies. The
    /// write path must truncate its output accordingly and surface
    /// [`StorageError::Crashed`].
    Torn {
        /// Payload bytes that reach the medium before the tear.
        valid_bytes: usize,
    },
    /// The simulated process dies at the site with nothing extra written.
    Crash,
}

/// Stateful executor of a [`FaultPlan`].
///
/// Attach one to a [`SimDevice`](crate::SimDevice) via
/// `set_fault_injector`, or to a [`FileTable`](crate::FileTable) via
/// `set_fault_plan`; block readers consult it once per read attempt.
/// Write paths consult [`FaultInjector::on_write`] once per visit to a
/// named write site.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Remaining failures for targeted transient faults.
    remaining: HashMap<(u32, usize), u32>,
    /// Current random-failure streak per block.
    streak: HashMap<(u32, usize), u32>,
    /// Read-attempt counter per block (drives the random hash).
    attempts: HashMap<(u32, usize), u64>,
    /// Visit counter per write site (drives crash-point hit matching).
    write_hits: HashMap<String, u64>,
    /// Remaining failures for transient write faults.
    write_remaining: HashMap<String, u32>,
    stats: FaultStats,
}

/// SplitMix64: a tiny, high-quality 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Build an injector executing `plan` from its initial state.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            remaining: HashMap::new(),
            streak: HashMap::new(),
            attempts: HashMap::new(),
            write_hits: HashMap::new(),
            write_remaining: HashMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of injected faults so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Uniform in [0, 1) derived from (seed, block key, attempt).
    fn hash01(&self, key: (u32, usize), attempt: u64) -> f64 {
        let mixed = splitmix64(
            self.plan
                .seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(((key.0 as u64) << 32) | key.1 as u64)
                .wrapping_add(attempt.wrapping_mul(0xA24B_AED4_963E_E407)),
        );
        (mixed >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decide the fate of one read attempt against `(table_id, block)`.
    pub fn on_read(&mut self, table_id: u32, block: usize) -> ReadOutcome {
        let key = (table_id, block);
        let attempt = self.attempts.entry(key).or_insert(0);
        *attempt += 1;
        let attempt = *attempt;

        if let Some(&kind) = self.plan.targeted.get(&key) {
            match kind {
                FaultKind::Transient { failures } => {
                    let left = self.remaining.entry(key).or_insert(failures);
                    if *left > 0 {
                        *left -= 1;
                        self.stats.transient_failures += 1;
                        return ReadOutcome::Fail(StorageError::ReadFailed {
                            block,
                            attempts: 1,
                            message: "injected transient read fault".into(),
                        });
                    }
                }
                FaultKind::Permanent => {
                    self.stats.permanent_failures += 1;
                    return ReadOutcome::Fail(StorageError::ReadFailed {
                        block,
                        attempts: 1,
                        message: "injected permanent media fault".into(),
                    });
                }
                FaultKind::Corruption => {
                    self.stats.corruption_failures += 1;
                    let expected = splitmix64(self.plan.seed ^ block as u64) as u32;
                    return ReadOutcome::Fail(StorageError::ChecksumMismatch {
                        block: Some(block),
                        expected,
                        actual: !expected,
                    });
                }
                FaultKind::LatencySpike { seconds } => {
                    self.stats.latency_spikes += 1;
                    self.stats.injected_latency_seconds += seconds;
                    return ReadOutcome::Delay(seconds);
                }
            }
        }

        if self.plan.transient_rate > 0.0 {
            let roll = self.hash01(key, attempt);
            let streak = self.streak.entry(key).or_insert(0);
            if *streak < self.plan.max_consecutive && roll < self.plan.transient_rate {
                *streak += 1;
                self.stats.transient_failures += 1;
                return ReadOutcome::Fail(StorageError::ReadFailed {
                    block,
                    attempts: 1,
                    message: "injected random transient fault".into(),
                });
            }
            *streak = 0;
        }
        ReadOutcome::Ok
    }

    /// Decide the fate of one visit to the named write `site`.
    ///
    /// Visits are counted per site, so a [`WriteFault::Crash`] can target
    /// "the third append" while letting the first two land — the lever the
    /// crash matrix uses to kill runs mid-training rather than only at the
    /// first write.
    pub fn on_write(&mut self, site: &str) -> WriteOutcome {
        let hits = self.write_hits.entry(site.to_string()).or_insert(0);
        *hits += 1;
        let visit = *hits;

        match self.plan.writes.get(site) {
            Some(&WriteFault::Failed { failures }) => {
                let left = self
                    .write_remaining
                    .entry(site.to_string())
                    .or_insert(failures);
                if *left > 0 {
                    *left -= 1;
                    self.stats.write_failures += 1;
                    return WriteOutcome::Fail(StorageError::WriteFailed {
                        site: site.to_string(),
                        attempts: 1,
                        message: "injected transient write fault".into(),
                    });
                }
            }
            Some(&WriteFault::Torn { valid_bytes }) if visit == 1 => {
                self.stats.torn_writes += 1;
                self.stats.crash_points += 1;
                return WriteOutcome::Torn { valid_bytes };
            }
            Some(&WriteFault::Crash { hit }) if visit == hit => {
                self.stats.crash_points += 1;
                return WriteOutcome::Crash;
            }
            _ => {}
        }
        WriteOutcome::Ok
    }

    /// How many times `site` has been visited so far.
    pub fn write_visits(&self, site: &str) -> u64 {
        self.write_hits.get(site).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fails() {
        let mut inj = FaultInjector::new(FaultPlan::new(1));
        for b in 0..100 {
            assert_eq!(inj.on_read(1, b), ReadOutcome::Ok);
        }
        assert_eq!(inj.stats().total_failures(), 0);
    }

    #[test]
    fn targeted_transient_fails_then_recovers() {
        let mut inj = FaultInjector::new(FaultPlan::new(1).with_transient(7, 3, 2));
        assert!(matches!(inj.on_read(7, 3), ReadOutcome::Fail(_)));
        assert!(matches!(inj.on_read(7, 3), ReadOutcome::Fail(_)));
        assert_eq!(inj.on_read(7, 3), ReadOutcome::Ok);
        assert_eq!(inj.on_read(7, 3), ReadOutcome::Ok);
        // Other blocks and tables untouched.
        assert_eq!(inj.on_read(7, 4), ReadOutcome::Ok);
        assert_eq!(inj.on_read(8, 3), ReadOutcome::Ok);
        assert_eq!(inj.stats().transient_failures, 2);
    }

    #[test]
    fn permanent_fault_never_recovers() {
        let mut inj = FaultInjector::new(FaultPlan::new(1).with_permanent(1, 0));
        for _ in 0..20 {
            match inj.on_read(1, 0) {
                ReadOutcome::Fail(e) => assert!(e.is_retryable()),
                other => panic!("expected failure, got {other:?}"),
            }
        }
        assert_eq!(inj.stats().permanent_failures, 20);
    }

    #[test]
    fn corruption_reports_checksum_mismatch() {
        let mut inj = FaultInjector::new(FaultPlan::new(1).with_corruption(1, 5));
        match inj.on_read(1, 5) {
            ReadOutcome::Fail(StorageError::ChecksumMismatch {
                block,
                expected,
                actual,
            }) => {
                assert_eq!(block, Some(5));
                assert_ne!(expected, actual);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn latency_spike_delays_but_succeeds() {
        let mut inj = FaultInjector::new(FaultPlan::new(1).with_latency_spike(1, 2, 0.25));
        assert_eq!(inj.on_read(1, 2), ReadOutcome::Delay(0.25));
        assert_eq!(inj.stats().latency_spikes, 1);
        assert!((inj.stats().injected_latency_seconds - 0.25).abs() < 1e-12);
    }

    #[test]
    fn random_transient_is_seed_deterministic() {
        let plan = FaultPlan::new(42).with_random_transient(0.3, 2);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for block in 0..50 {
            for _ in 0..4 {
                assert_eq!(a.on_read(1, block), b.on_read(1, block));
            }
        }
        assert!(
            a.stats().transient_failures > 0,
            "rate 0.3 should fire in 200 reads"
        );
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn random_transient_streak_is_bounded() {
        let mut inj = FaultInjector::new(FaultPlan::new(9).with_random_transient(1.0, 3));
        // Even at rate 1.0 the streak cap forces a success every 4th attempt.
        let mut consecutive = 0u32;
        for _ in 0..40 {
            match inj.on_read(1, 0) {
                ReadOutcome::Fail(_) => {
                    consecutive += 1;
                    assert!(consecutive <= 3, "streak exceeded the cap");
                }
                ReadOutcome::Ok => consecutive = 0,
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mut a = FaultInjector::new(FaultPlan::new(1).with_random_transient(0.5, 1));
        let mut b = FaultInjector::new(FaultPlan::new(2).with_random_transient(0.5, 1));
        let fa: Vec<bool> = (0..64)
            .map(|i| matches!(a.on_read(1, i), ReadOutcome::Fail(_)))
            .collect();
        let fb: Vec<bool> = (0..64)
            .map(|i| matches!(b.on_read(1, i), ReadOutcome::Fail(_)))
            .collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn plan_is_empty_reporting() {
        assert!(FaultPlan::new(3).is_empty());
        assert!(!FaultPlan::new(3).with_permanent(1, 0).is_empty());
        assert!(!FaultPlan::new(3).with_random_transient(0.1, 1).is_empty());
        assert!(!FaultPlan::new(3)
            .with_crash_point(sites::WAL_AFTER_FSYNC, 1)
            .is_empty());
    }

    #[test]
    fn write_failed_fails_then_recovers() {
        let mut inj =
            FaultInjector::new(FaultPlan::new(1).with_write_failed(sites::WAL_BEFORE_APPEND, 2));
        for _ in 0..2 {
            match inj.on_write(sites::WAL_BEFORE_APPEND) {
                WriteOutcome::Fail(e) => {
                    assert!(e.is_retryable(), "WriteFailed must be retryable");
                    assert!(e.to_string().contains(sites::WAL_BEFORE_APPEND));
                }
                other => panic!("expected failure, got {other:?}"),
            }
        }
        assert_eq!(inj.on_write(sites::WAL_BEFORE_APPEND), WriteOutcome::Ok);
        // Other sites untouched.
        assert_eq!(inj.on_write(sites::WAL_AFTER_FSYNC), WriteOutcome::Ok);
        assert_eq!(inj.stats().write_failures, 2);
        assert_eq!(inj.stats().total_write_events(), 2);
    }

    #[test]
    fn torn_write_fires_once() {
        let mut inj =
            FaultInjector::new(FaultPlan::new(1).with_torn_write(sites::SAVE_TABLE_MID_RENAME, 17));
        assert_eq!(
            inj.on_write(sites::SAVE_TABLE_MID_RENAME),
            WriteOutcome::Torn { valid_bytes: 17 }
        );
        // After the tear the "process" restarts; subsequent visits succeed.
        assert_eq!(inj.on_write(sites::SAVE_TABLE_MID_RENAME), WriteOutcome::Ok);
        assert_eq!(inj.stats().torn_writes, 1);
    }

    #[test]
    fn crash_point_targets_nth_visit() {
        let mut inj = FaultInjector::new(
            FaultPlan::new(1).with_crash_point(sites::WAL_AFTER_APPEND_BEFORE_FSYNC, 3),
        );
        assert_eq!(
            inj.on_write(sites::WAL_AFTER_APPEND_BEFORE_FSYNC),
            WriteOutcome::Ok
        );
        assert_eq!(
            inj.on_write(sites::WAL_AFTER_APPEND_BEFORE_FSYNC),
            WriteOutcome::Ok
        );
        assert_eq!(
            inj.on_write(sites::WAL_AFTER_APPEND_BEFORE_FSYNC),
            WriteOutcome::Crash
        );
        assert_eq!(
            inj.on_write(sites::WAL_AFTER_APPEND_BEFORE_FSYNC),
            WriteOutcome::Ok
        );
        assert_eq!(inj.stats().crash_points, 1);
        assert_eq!(inj.write_visits(sites::WAL_AFTER_APPEND_BEFORE_FSYNC), 4);
    }

    #[test]
    fn crash_sites_registry_is_stable() {
        let s = sites::crash_sites();
        assert!(s.contains(&sites::WAL_BEFORE_APPEND));
        assert!(s.contains(&sites::WAL_AFTER_APPEND_BEFORE_FSYNC));
        assert!(s.contains(&sites::WAL_AFTER_FSYNC));
        assert!(s.contains(&sites::ATOMIC_WRITE_MID_RENAME));
        assert!(s.contains(&sites::SAVE_TABLE_MID_RENAME));
        assert!(s.contains(&sites::MODEL_STORE_POST_SNAPSHOT));
        assert!(s.contains(&sites::TABLE_APPEND_ROWS));
        assert!(s.contains(&sites::TABLE_SEAL_BLOCK));
        // Names are unique.
        let mut dedup = s.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }
}
