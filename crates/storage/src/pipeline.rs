//! Double-buffered prefetch pipeline (the paper's §6.3, for real).
//!
//! The analytic [`DoubleBufferModel`](crate::buffer::DoubleBufferModel)
//! predicts the epoch time when buffer filling overlaps SGD; this module
//! provides the actual mechanism: a *producer* thread fills buffer `B`
//! (block reads + tuple-level shuffle) while the consumer drains buffer `A`
//! into the training loop, the two swapping through a bounded channel of
//! capacity [`PIPELINE_SLOTS`]. One batch can sit in the channel while the
//! producer builds the next — exactly the two in-flight buffers of double
//! buffering.
//!
//! ## Design rules
//!
//! * **Scoped, not detached.** [`run_epoch_pipeline`] spawns the producer
//!   inside [`std::thread::scope`], so the producer may mutably borrow the
//!   caller's `SimDevice`, operators, or shuffle strategy for the duration
//!   of the epoch. No state is cloned and no stats need merging: simulated
//!   I/O is charged to the *real* device, fault injection and retry run
//!   their normal code path (just on the producer thread), and when the
//!   scope ends the caller's borrows are back.
//! * **Determinism.** The producer runs the *same* fill code (same RNG
//!   streams, same visit order) as the serial path; the channel preserves
//!   send order; there is exactly one producer and one consumer. Hence the
//!   consumer observes tuples in the identical order as serial execution,
//!   and trained models are bit-identical for a fixed seed.
//! * **Clock accounting.** The simulated clock knows nothing about threads:
//!   fills charge `io_seconds` as usual, and the epoch-time formula is the
//!   caller's job (`DoubleBufferModel::double_buffer` over the per-fill
//!   io/compute vectors when pipelining, `single_buffer` otherwise). Wall
//!   clock, by contrast, overlaps for real — that is the point.
//! * **Failure.** A producer error travels to the consumer side as
//!   [`PipelineError::Producer`] once in-flight batches drain — no hang. A
//!   consumer that stops early just drops its receiver; the producer's next
//!   send fails, it winds down, and the scope joins cleanly. Producer
//!   panics resurface as [`PipelineError::ProducerPanicked`].
//!
//! Telemetry: each fill runs under a `pipeline.fill` span (wall + sim);
//! consumer waits are recorded under `pipeline.stall` spans, producer waits
//! in the `pipeline.backpressure.wall_seconds` histogram.

use std::fmt;
use std::ops::Deref;
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};
use std::sync::Arc;
use std::time::Instant;

use corgipile_telemetry::{Span, Telemetry};

use crate::tuple::{tuple_clone_count, Tuple};

/// Bounded-channel capacity between producer and consumer: one batch in
/// flight plus one being built equals the paper's two buffers.
pub const PIPELINE_SLOTS: usize = 1;

/// A shared, immutable reference to one tuple of an `Arc`-backed block.
///
/// The zero-copy fill path shuffles *references* instead of cloning
/// [`Tuple`]s: a block is decoded (or fetched from the buffer pool) once
/// into an `Arc<Vec<Tuple>>`, and the in-buffer Fisher–Yates permutes
/// `TupleRef`s, each two words plus an `Arc` bump.
#[derive(Debug, Clone)]
pub struct TupleRef {
    block: Arc<Vec<Tuple>>,
    idx: u32,
}

impl TupleRef {
    /// Reference tuple `idx` of `block`.
    pub fn new(block: Arc<Vec<Tuple>>, idx: usize) -> Self {
        debug_assert!(idx < block.len());
        TupleRef {
            block,
            idx: idx as u32,
        }
    }

    /// The referenced tuple.
    pub fn tuple(&self) -> &Tuple {
        &self.block[self.idx as usize]
    }
}

impl Deref for TupleRef {
    type Target = Tuple;

    fn deref(&self) -> &Tuple {
        self.tuple()
    }
}

/// Wrap every tuple of an `Arc`-shared block in a [`TupleRef`].
pub fn block_refs(block: &Arc<Vec<Tuple>>) -> impl Iterator<Item = TupleRef> + '_ {
    (0..block.len()).map(|i| TupleRef::new(Arc::clone(block), i))
}

thread_local! {
    static BATCH_GROWS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Thread-local count of [`TupleBatch`] backing-store reallocations.
///
/// A steady-state batch executor clears and refills the same batches every
/// epoch; once warm, this counter must stop moving. Tests snapshot it
/// before and after an epoch to assert zero steady-state allocations.
pub fn batch_grow_count() -> u64 {
    BATCH_GROWS.with(|c| c.get())
}

fn note_batch_grow() {
    BATCH_GROWS.with(|c| c.set(c.get() + 1));
}

/// A reusable, capacity-preserving batch of zero-copy [`TupleRef`]s.
///
/// The batch-at-a-time executor hands one `TupleBatch` down the operator
/// tree per pull; each operator `clear()`s and refills it. `clear` keeps
/// the backing allocation, so after the first epoch warms the capacity no
/// further allocations happen ([`batch_grow_count`] stops moving).
#[derive(Debug, Default)]
pub struct TupleBatch {
    refs: Vec<TupleRef>,
}

impl TupleBatch {
    /// An empty batch with no backing store yet.
    pub fn new() -> Self {
        TupleBatch::default()
    }

    /// An empty batch pre-sized for `cap` refs.
    pub fn with_capacity(cap: usize) -> Self {
        TupleBatch {
            refs: Vec::with_capacity(cap),
        }
    }

    /// Drop all refs but keep the backing allocation.
    pub fn clear(&mut self) {
        self.refs.clear();
    }

    /// Append one ref, counting a grow if the backing store reallocates.
    pub fn push(&mut self, r: TupleRef) {
        if self.refs.len() == self.refs.capacity() {
            note_batch_grow();
        }
        self.refs.push(r);
    }

    /// Append `Arc`-bump clones of `src` (no `Tuple` clones).
    pub fn extend_from_slice(&mut self, src: &[TupleRef]) {
        if self.refs.len() + src.len() > self.refs.capacity() {
            note_batch_grow();
        }
        self.refs.extend_from_slice(src);
    }

    /// Number of refs currently in the batch.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the batch holds no refs.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Capacity of the backing store.
    pub fn capacity(&self) -> usize {
        self.refs.capacity()
    }

    /// Iterate the refs in order.
    pub fn iter(&self) -> std::slice::Iter<'_, TupleRef> {
        self.refs.iter()
    }

    /// Surrender the backing `Vec` (for cross-thread handover), leaving the
    /// batch empty with no capacity.
    pub fn take_refs(&mut self) -> Vec<TupleRef> {
        std::mem::take(&mut self.refs)
    }
}

impl Deref for TupleBatch {
    type Target = [TupleRef];

    fn deref(&self) -> &[TupleRef] {
        &self.refs
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = &'a TupleRef;
    type IntoIter = std::slice::Iter<'a, TupleRef>;

    fn into_iter(self) -> Self::IntoIter {
        self.refs.iter()
    }
}

/// Error surfaced on the consumer side of [`run_epoch_pipeline`].
#[derive(Debug)]
pub enum PipelineError<E> {
    /// The producer closure returned a typed error.
    Producer(E),
    /// The producer thread panicked; the payload's message is preserved.
    ProducerPanicked(String),
}

impl<E: fmt::Display> fmt::Display for PipelineError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Producer(e) => write!(f, "pipeline producer failed: {e}"),
            PipelineError::ProducerPanicked(msg) => {
                write!(f, "pipeline producer panicked: {msg}")
            }
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for PipelineError<E> {}

/// What one epoch of pipelined execution did, beyond its batches.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineReport {
    /// Batches the producer filled and handed over.
    pub fills: u64,
    /// Batches the consumer actually received (lower if it stopped early).
    pub batches_consumed: u64,
    /// `Tuple::clone` calls made on the producer thread — the zero-copy
    /// fill paths keep this at exactly 0.
    pub producer_tuple_clones: u64,
    /// Wall seconds the consumer spent waiting for the producer.
    pub stall_wall_seconds: f64,
    /// Wall seconds the producer spent blocked on a full channel.
    pub backpressure_wall_seconds: f64,
}

/// Producer-side handle: fill batches and hand them to the consumer.
pub struct PipelineSender<T> {
    tx: SyncSender<T>,
    telemetry: Telemetry,
    fills: u64,
    backpressure_wall_seconds: f64,
    hung_up: bool,
}

impl<T> PipelineSender<T> {
    /// Run `fill` under a `pipeline.fill` span and send its batch.
    ///
    /// The closure receives the span to attribute simulated I/O seconds
    /// (`Span::add_sim_seconds`). Returns `false` once the consumer has
    /// hung up — the producer should stop filling; the batch that observed
    /// the hang-up is dropped.
    pub fn fill_and_send<F: FnOnce(&mut Span) -> T>(&mut self, fill: F) -> bool {
        if self.hung_up {
            return false;
        }
        let mut span = self.telemetry.span("pipeline.fill");
        let batch = fill(&mut span);
        span.finish();
        let blocked_at = Instant::now();
        match self.tx.send(batch) {
            Ok(()) => {
                self.backpressure_wall_seconds += blocked_at.elapsed().as_secs_f64();
                self.fills += 1;
                true
            }
            Err(_) => {
                self.hung_up = true;
                false
            }
        }
    }

    /// Whether the consumer has already hung up.
    pub fn consumer_gone(&self) -> bool {
        self.hung_up
    }
}

/// Run one epoch with a producer thread overlapping the consumer.
///
/// `produce` executes on a scoped thread and pushes batches through the
/// bounded channel via [`PipelineSender::fill_and_send`]; `consume` runs on
/// the calling thread for every batch, in send order, returning `false` to
/// stop early. Typed producer errors and panics are reported after the
/// scope joins — never by hanging. See the module docs for the determinism
/// and accounting rules.
pub fn run_epoch_pipeline<T, E, P, C>(
    telemetry: &Telemetry,
    produce: P,
    mut consume: C,
) -> Result<PipelineReport, PipelineError<E>>
where
    T: Send,
    E: Send,
    P: FnOnce(&mut PipelineSender<T>) -> Result<(), E> + Send,
    C: FnMut(T) -> bool,
{
    let (tx, rx) = std::sync::mpsc::sync_channel::<T>(PIPELINE_SLOTS);
    std::thread::scope(|scope| {
        let producer_telemetry = telemetry.clone();
        let producer = scope.spawn(move || {
            let clones_before = tuple_clone_count();
            let mut sender = PipelineSender {
                tx,
                telemetry: producer_telemetry,
                fills: 0,
                backpressure_wall_seconds: 0.0,
                hung_up: false,
            };
            let outcome = produce(&mut sender);
            let clones = tuple_clone_count() - clones_before;
            (
                outcome,
                sender.fills,
                sender.backpressure_wall_seconds,
                clones,
            )
        });

        let mut report = PipelineReport::default();
        let mut rx = Some(rx);
        while let Some(receiver) = rx.as_ref() {
            let batch = recv_with_stall(receiver, telemetry, &mut report);
            match batch {
                Some(b) => {
                    report.batches_consumed += 1;
                    if !consume(b) {
                        // Early stop: drop the receiver so the producer's
                        // next send fails and it winds down.
                        rx = None;
                    }
                }
                None => rx = None,
            }
        }

        match producer.join() {
            Ok((outcome, fills, backpressure, clones)) => {
                report.fills = fills;
                report.backpressure_wall_seconds = backpressure;
                report.producer_tuple_clones = clones;
                match outcome {
                    Ok(()) => Ok(report),
                    Err(e) => Err(PipelineError::Producer(e)),
                }
            }
            Err(payload) => Err(PipelineError::ProducerPanicked(panic_message(payload))),
        }
    })
}

/// Receive one batch, charging any wait to `pipeline.stall`.
fn recv_with_stall<T>(
    rx: &Receiver<T>,
    telemetry: &Telemetry,
    report: &mut PipelineReport,
) -> Option<T> {
    // Fast path: a batch is already waiting, no stall to record.
    match rx.try_recv() {
        Ok(batch) => return Some(batch),
        Err(TryRecvError::Disconnected) => return None,
        Err(TryRecvError::Empty) => {}
    }
    let span = telemetry.span("pipeline.stall");
    let waited_from = Instant::now();
    let got = rx.recv().ok();
    if got.is_some() {
        report.stall_wall_seconds += waited_from.elapsed().as_secs_f64();
        span.finish();
    } else {
        // End of stream is not a stall.
        span.cancel();
    }
    got
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StorageError;

    #[test]
    fn batches_arrive_in_send_order() {
        let tel = Telemetry::enabled();
        let mut got = Vec::new();
        let report = run_epoch_pipeline::<_, StorageError, _, _>(
            &tel,
            |sender| {
                for i in 0..16 {
                    if !sender.fill_and_send(|_| i) {
                        break;
                    }
                }
                Ok(())
            },
            |i| {
                got.push(i);
                true
            },
        )
        .unwrap();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        assert_eq!(report.fills, 16);
        assert_eq!(report.batches_consumed, 16);
    }

    #[test]
    fn producer_error_is_typed_and_does_not_hang() {
        let tel = Telemetry::disabled();
        let mut got = Vec::new();
        let err = run_epoch_pipeline(
            &tel,
            |sender| {
                sender.fill_and_send(|_| 1u32);
                sender.fill_and_send(|_| 2u32);
                Err(StorageError::ReadFailed {
                    block: 7,
                    attempts: 3,
                    message: "dead block".into(),
                })
            },
            |i| {
                got.push(i);
                true
            },
        )
        .unwrap_err();
        // In-flight batches drain first, then the typed error surfaces.
        assert_eq!(got, vec![1, 2]);
        match err {
            PipelineError::Producer(StorageError::ReadFailed {
                block, attempts, ..
            }) => {
                assert_eq!((block, attempts), (7, 3));
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn early_consumer_stop_joins_cleanly() {
        let tel = Telemetry::disabled();
        let mut seen = 0u64;
        let report = run_epoch_pipeline::<_, StorageError, _, _>(
            &tel,
            |sender| {
                let mut sent_all = true;
                for i in 0..1000u64 {
                    if !sender.fill_and_send(|_| i) {
                        sent_all = false;
                        break;
                    }
                }
                assert!(!sent_all, "consumer hang-up should stop the producer");
                assert!(sender.consumer_gone());
                Ok(())
            },
            |_| {
                seen += 1;
                seen < 3
            },
        )
        .unwrap();
        assert_eq!(seen, 3);
        assert_eq!(report.batches_consumed, 3);
        assert!(report.fills < 1000);
    }

    #[test]
    fn producer_panic_is_reported_not_propagated() {
        let tel = Telemetry::disabled();
        let err = run_epoch_pipeline::<u32, StorageError, _, _>(
            &tel,
            |_| panic!("boom in producer"),
            |_| true,
        )
        .unwrap_err();
        match err {
            PipelineError::ProducerPanicked(msg) => assert!(msg.contains("boom")),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn tuple_refs_share_the_block_without_cloning() {
        let block: Arc<Vec<Tuple>> = Arc::new(
            (0..10)
                .map(|i| Tuple::dense(i, vec![i as f32], 1.0))
                .collect(),
        );
        let before = tuple_clone_count();
        let mut refs: Vec<TupleRef> = block_refs(&block).collect();
        refs.swap(0, 9);
        refs.swap(3, 7);
        assert_eq!(refs[0].id, 9);
        assert_eq!(refs[9].tuple().id, 0);
        assert_eq!(refs[3].features.dim(), 1);
        assert_eq!(
            tuple_clone_count(),
            before,
            "TupleRef must never clone tuples"
        );
    }

    #[test]
    fn pipeline_reports_zero_producer_clones_for_ref_batches() {
        let block: Arc<Vec<Tuple>> =
            Arc::new((0..100).map(|i| Tuple::dense(i, vec![0.5], 1.0)).collect());
        let tel = Telemetry::enabled();
        let mut drained = 0usize;
        let report = run_epoch_pipeline::<_, StorageError, _, _>(
            &tel,
            |sender| {
                for chunk in 0..10usize {
                    let batch: Vec<TupleRef> = (0..10)
                        .map(|i| TupleRef::new(Arc::clone(&block), chunk * 10 + i))
                        .collect();
                    if !sender.fill_and_send(|_| batch) {
                        break;
                    }
                }
                Ok(())
            },
            |batch: Vec<TupleRef>| {
                drained += batch.len();
                true
            },
        )
        .unwrap();
        assert_eq!(drained, 100);
        assert_eq!(report.producer_tuple_clones, 0);
    }

    #[test]
    fn tuple_batch_clear_keeps_capacity_and_counts_grows() {
        let block: Arc<Vec<Tuple>> = Arc::new(
            (0..32)
                .map(|i| Tuple::dense(i, vec![i as f32], 1.0))
                .collect(),
        );
        let mut batch = TupleBatch::new();
        let before = batch_grow_count();
        for r in block_refs(&block) {
            batch.push(r);
        }
        assert!(batch_grow_count() > before, "cold fills must grow");
        assert_eq!(batch.len(), 32);
        let cap = batch.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.capacity(), cap, "clear must keep the allocation");
        // Warm refill: same size, zero grows.
        let warm = batch_grow_count();
        for r in block_refs(&block) {
            batch.push(r);
        }
        assert_eq!(batch_grow_count(), warm, "warm refill must not allocate");
        // Zero-copy: refilling never clones tuples.
        let clones = tuple_clone_count();
        let mut other = TupleBatch::with_capacity(32);
        other.extend_from_slice(&batch);
        assert_eq!(tuple_clone_count(), clones);
        assert_eq!(other.len(), 32);
        assert_eq!(other[5].id, 5);
    }

    #[test]
    fn stress_many_epochs_small_buffers_preserve_order() {
        // Loom-free determinism stress: whatever the thread interleaving,
        // the consumer must observe the producer's exact send order.
        for seed in 0u64..8 {
            for epoch in 0..4u64 {
                let tel = Telemetry::disabled();
                let expected: Vec<u64> = (0..64)
                    .map(|i| i ^ (seed.wrapping_mul(0x9E37) + epoch))
                    .collect();
                let send_side = expected.clone();
                let mut got = Vec::new();
                run_epoch_pipeline::<_, StorageError, _, _>(
                    &tel,
                    move |sender| {
                        for chunk in send_side.chunks(3) {
                            if !sender.fill_and_send(|_| chunk.to_vec()) {
                                break;
                            }
                        }
                        Ok(())
                    },
                    |chunk: Vec<u64>| {
                        got.extend(chunk);
                        true
                    },
                )
                .unwrap();
                assert_eq!(got, expected, "order diverged at seed {seed} epoch {epoch}");
            }
        }
    }
}
