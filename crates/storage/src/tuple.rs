//! Training tuples: `⟨id, features, label⟩`.
//!
//! The paper stores training data in PostgreSQL with the schema
//! `⟨id, features_k[], features_v[], label⟩` (§6.1): sparse datasets carry
//! index/value arrays, dense datasets only the value array. [`FeatureVec`]
//! mirrors exactly that: [`FeatureVec::Dense`] holds only values,
//! [`FeatureVec::Sparse`] holds `(index, value)` pairs plus the logical
//! dimensionality.

use crate::error::StorageError;
use crate::Result;

use std::cell::Cell;

/// Identifier of a tuple within a table (its insertion position).
pub type TupleId = u64;

thread_local! {
    /// Per-thread count of [`Tuple`] clones (see [`tuple_clone_count`]).
    static TUPLE_CLONES: Cell<u64> = const { Cell::new(0) };
}

/// Number of `Tuple::clone` calls made *by the current thread* so far.
///
/// The steady-state fill path of the pipelined executor is required to be
/// zero-copy: blocks are decoded once and handed around behind `Arc`s, so
/// filling and draining a buffer must not clone tuples at all. Tests (and
/// the [`crate::pipeline`] producer) enforce that by diffing this counter
/// around the code under test. The counter is thread-local so concurrent
/// tests cannot perturb each other's measurements.
pub fn tuple_clone_count() -> u64 {
    TUPLE_CLONES.with(|c| c.get())
}

/// Number of lanes the dense kernels process per unrolled iteration.
///
/// Eight `f32` lanes fill one AVX2 register; the independent-accumulator
/// form below is what LLVM's autovectorizer turns into packed FMAs without
/// any explicit SIMD intrinsics (and without new dependencies).
pub const DENSE_LANES: usize = 8;

/// Unrolled dense dot product over `min(x.len(), w.len())` components.
///
/// Eight independent accumulators break the serial dependency chain of the
/// naive `fold`, letting the autovectorizer emit packed multiply-adds. The
/// summation order differs from [`dense_dot_scalar`], so results may differ
/// by normal float rounding; both are deterministic.
#[inline]
pub fn dense_dot(x: &[f32], w: &[f32]) -> f32 {
    let n = x.len().min(w.len());
    let (x, w) = (&x[..n], &w[..n]);
    let mut acc = [0.0f32; DENSE_LANES];
    let mut xc = x.chunks_exact(DENSE_LANES);
    let mut wc = w.chunks_exact(DENSE_LANES);
    for (xo, wo) in (&mut xc).zip(&mut wc) {
        for k in 0..DENSE_LANES {
            acc[k] += xo[k] * wo[k];
        }
    }
    let tail: f32 = xc
        .remainder()
        .iter()
        .zip(wc.remainder())
        .map(|(a, b)| a * b)
        .sum();
    let lo = (acc[0] + acc[4]) + (acc[1] + acc[5]);
    let hi = (acc[2] + acc[6]) + (acc[3] + acc[7]);
    (lo + hi) + tail
}

/// Reference scalar dot product (the pre-unrolling implementation).
///
/// Kept for equivalence tests and the `dense_kernels` micro-benchmark.
#[inline]
pub fn dense_dot_scalar(x: &[f32], w: &[f32]) -> f32 {
    x.iter().zip(w).map(|(a, b)| a * b).sum()
}

/// Unrolled dense `w[i] += scale * x[i]` over `min(x.len(), w.len())`
/// components. Same unrolling rationale as [`dense_dot`]; unlike the dot
/// product there is no reassociation, so results are bit-identical to
/// [`dense_axpy_scalar`].
#[inline]
pub fn dense_axpy(scale: f32, x: &[f32], w: &mut [f32]) {
    let n = x.len().min(w.len());
    let (x, w) = (&x[..n], &mut w[..n]);
    let mut xc = x.chunks_exact(DENSE_LANES);
    let mut wc = w.chunks_exact_mut(DENSE_LANES);
    for (xo, wo) in (&mut xc).zip(&mut wc) {
        for k in 0..DENSE_LANES {
            wo[k] += scale * xo[k];
        }
    }
    for (xi, wi) in xc.remainder().iter().zip(wc.into_remainder()) {
        *wi += scale * xi;
    }
}

/// Reference scalar axpy (the pre-unrolling implementation).
#[inline]
pub fn dense_axpy_scalar(scale: f32, x: &[f32], w: &mut [f32]) {
    for (wi, &xi) in w.iter_mut().zip(x) {
        *wi += scale * xi;
    }
}

/// A feature vector, dense or sparse, with `f32` components.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureVec {
    /// Dense layout: `values[i]` is the value of feature `i`.
    Dense(Vec<f32>),
    /// Sparse layout: only non-zero features are materialized.
    Sparse {
        /// Logical dimensionality of the vector.
        dim: u32,
        /// Indices of the non-zero features, strictly increasing.
        indices: Vec<u32>,
        /// Values of the non-zero features (same length as `indices`).
        values: Vec<f32>,
    },
}

impl FeatureVec {
    /// Build a sparse vector, validating the index/value invariants.
    pub fn sparse(dim: u32, indices: Vec<u32>, values: Vec<f32>) -> Self {
        assert_eq!(
            indices.len(),
            values.len(),
            "sparse indices/values length mismatch"
        );
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "sparse indices must be strictly increasing"
        );
        debug_assert!(indices.iter().all(|&i| i < dim), "index out of dimension");
        FeatureVec::Sparse {
            dim,
            indices,
            values,
        }
    }

    /// Logical dimensionality of the vector.
    pub fn dim(&self) -> usize {
        match self {
            FeatureVec::Dense(v) => v.len(),
            FeatureVec::Sparse { dim, .. } => *dim as usize,
        }
    }

    /// Number of materialized (stored) components.
    pub fn nnz(&self) -> usize {
        match self {
            FeatureVec::Dense(v) => v.len(),
            FeatureVec::Sparse { values, .. } => values.len(),
        }
    }

    /// Value of feature `i` (zero for absent sparse entries).
    pub fn get(&self, i: usize) -> f32 {
        match self {
            FeatureVec::Dense(v) => v.get(i).copied().unwrap_or(0.0),
            FeatureVec::Sparse {
                indices, values, ..
            } => indices
                .binary_search(&(i as u32))
                .map(|pos| values[pos])
                .unwrap_or(0.0),
        }
    }

    /// Dot product with a dense weight slice.
    ///
    /// The weight slice must be at least as long as the vector's dimension.
    pub fn dot(&self, w: &[f32]) -> f32 {
        match self {
            FeatureVec::Dense(v) => dense_dot(v, w),
            FeatureVec::Sparse {
                indices, values, ..
            } => indices
                .iter()
                .zip(values)
                .map(|(&i, &v)| v * w[i as usize])
                .sum(),
        }
    }

    /// `w += scale * self`, the sparse-aware axpy used by gradient updates.
    pub fn axpy_into(&self, scale: f32, w: &mut [f32]) {
        match self {
            FeatureVec::Dense(v) => dense_axpy(scale, v, w),
            FeatureVec::Sparse {
                indices, values, ..
            } => {
                for (&i, &v) in indices.iter().zip(values) {
                    w[i as usize] += scale * v;
                }
            }
        }
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> f32 {
        match self {
            FeatureVec::Dense(v) => v.iter().map(|x| x * x).sum(),
            FeatureVec::Sparse { values, .. } => values.iter().map(|x| x * x).sum(),
        }
    }

    /// Iterate `(index, value)` over materialized components.
    pub fn iter(&self) -> Box<dyn Iterator<Item = (usize, f32)> + '_> {
        match self {
            FeatureVec::Dense(v) => Box::new(v.iter().copied().enumerate()),
            FeatureVec::Sparse {
                indices, values, ..
            } => Box::new(indices.iter().zip(values).map(|(&i, &v)| (i as usize, v))),
        }
    }
}

/// One training example as stored in a heap table.
///
/// `Clone` is implemented by hand so every clone bumps the thread-local
/// counter behind [`tuple_clone_count`] — the zero-copy guarantee of the
/// pipelined fill path is asserted against it.
#[derive(Debug, PartialEq)]
pub struct Tuple {
    /// Position of the tuple in the original table order (`tuple_id` in the
    /// paper's Figure 3/4 diagnostics).
    pub id: TupleId,
    /// Feature vector.
    pub features: FeatureVec,
    /// Label: ±1 for binary classification, class index for multi-class,
    /// real value for regression.
    pub label: f32,
}

impl Clone for Tuple {
    fn clone(&self) -> Self {
        TUPLE_CLONES.with(|c| c.set(c.get() + 1));
        Tuple {
            id: self.id,
            features: self.features.clone(),
            label: self.label,
        }
    }
}

/// Encoding tags for the on-page representation.
const TAG_DENSE: u8 = 0;
const TAG_SPARSE: u8 = 1;

impl Tuple {
    /// Create a dense tuple.
    pub fn dense(id: TupleId, values: Vec<f32>, label: f32) -> Self {
        Tuple {
            id,
            features: FeatureVec::Dense(values),
            label,
        }
    }

    /// Create a sparse tuple.
    pub fn sparse(id: TupleId, dim: u32, indices: Vec<u32>, values: Vec<f32>, label: f32) -> Self {
        Tuple {
            id,
            features: FeatureVec::sparse(dim, indices, values),
            label,
        }
    }

    /// Size in bytes of the binary encoding produced by [`Tuple::encode`].
    pub fn encoded_len(&self) -> usize {
        // id(8) + label(4) + tag(1) + dim(4) + nnz(4)
        let header = 8 + 4 + 1 + 4 + 4;
        match &self.features {
            FeatureVec::Dense(v) => header + 4 * v.len(),
            FeatureVec::Sparse {
                indices, values, ..
            } => header + 4 * indices.len() + 4 * values.len(),
        }
    }

    /// Append the binary encoding of the tuple to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.label.to_le_bytes());
        match &self.features {
            FeatureVec::Dense(v) => {
                out.push(TAG_DENSE);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            FeatureVec::Sparse {
                dim,
                indices,
                values,
            } => {
                out.push(TAG_SPARSE);
                out.extend_from_slice(&dim.to_le_bytes());
                out.extend_from_slice(&(indices.len() as u32).to_le_bytes());
                for i in indices {
                    out.extend_from_slice(&i.to_le_bytes());
                }
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }

    /// Decode one tuple from the front of `buf`, returning it and the number
    /// of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(Tuple, usize)> {
        let need = |n: usize| -> Result<()> {
            if buf.len() < n {
                Err(StorageError::Corrupt(format!(
                    "need {n} bytes, have {}",
                    buf.len()
                )))
            } else {
                Ok(())
            }
        };
        need(8 + 4 + 1 + 4 + 4)?;
        let id = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let label = f32::from_le_bytes(buf[8..12].try_into().unwrap());
        let tag = buf[12];
        let dim = u32::from_le_bytes(buf[13..17].try_into().unwrap());
        let nnz = u32::from_le_bytes(buf[17..21].try_into().unwrap()) as usize;
        let mut off = 21;
        match tag {
            TAG_DENSE => {
                need(off + 4 * nnz)?;
                let mut v = Vec::with_capacity(nnz);
                for _ in 0..nnz {
                    v.push(f32::from_le_bytes(buf[off..off + 4].try_into().unwrap()));
                    off += 4;
                }
                Ok((
                    Tuple {
                        id,
                        features: FeatureVec::Dense(v),
                        label,
                    },
                    off,
                ))
            }
            TAG_SPARSE => {
                need(off + 8 * nnz)?;
                let mut indices = Vec::with_capacity(nnz);
                for _ in 0..nnz {
                    indices.push(u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()));
                    off += 4;
                }
                let mut values = Vec::with_capacity(nnz);
                for _ in 0..nnz {
                    values.push(f32::from_le_bytes(buf[off..off + 4].try_into().unwrap()));
                    off += 4;
                }
                Ok((
                    Tuple {
                        id,
                        features: FeatureVec::Sparse {
                            dim,
                            indices,
                            values,
                        },
                        label,
                    },
                    off,
                ))
            }
            other => Err(StorageError::Corrupt(format!(
                "unknown feature tag {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dense_roundtrip() {
        let t = Tuple::dense(42, vec![1.0, -2.5, 3.25], 1.0);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        assert_eq!(buf.len(), t.encoded_len());
        let (back, used) = Tuple::decode(&buf).unwrap();
        assert_eq!(back, t);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn sparse_roundtrip() {
        let t = Tuple::sparse(7, 1_000_000, vec![3, 99, 4321], vec![0.5, -1.0, 2.0], -1.0);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let (back, used) = Tuple::decode(&buf).unwrap();
        assert_eq!(back, t);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let t = Tuple::dense(1, vec![1.0; 8], 1.0);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        for cut in [0, 5, 20, buf.len() - 1] {
            assert!(
                Tuple::decode(&buf[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let t = Tuple::dense(1, vec![1.0], 1.0);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        buf[12] = 99;
        assert!(Tuple::decode(&buf).is_err());
    }

    #[test]
    fn sparse_get_and_dot() {
        let f = FeatureVec::sparse(10, vec![1, 4, 7], vec![2.0, 3.0, -1.0]);
        assert_eq!(f.get(1), 2.0);
        assert_eq!(f.get(0), 0.0);
        assert_eq!(f.get(7), -1.0);
        let w = vec![1.0; 10];
        assert_eq!(f.dot(&w), 4.0);
        assert_eq!(f.dim(), 10);
        assert_eq!(f.nnz(), 3);
    }

    #[test]
    fn dense_dot_and_axpy() {
        let f = FeatureVec::Dense(vec![1.0, 2.0, 3.0]);
        let mut w = vec![0.5, 0.5, 0.5];
        assert_eq!(f.dot(&w), 3.0);
        f.axpy_into(2.0, &mut w);
        assert_eq!(w, vec![2.5, 4.5, 6.5]);
        assert_eq!(f.norm_sq(), 14.0);
    }

    #[test]
    fn sparse_axpy_touches_only_nnz() {
        let f = FeatureVec::sparse(5, vec![0, 3], vec![1.0, 1.0]);
        let mut w = vec![0.0; 5];
        f.axpy_into(3.0, &mut w);
        assert_eq!(w, vec![3.0, 0.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn clone_bumps_the_thread_local_counter() {
        let before = tuple_clone_count();
        let t = Tuple::dense(1, vec![1.0, 2.0], 1.0);
        #[allow(clippy::redundant_clone)]
        let _copy = t.clone();
        assert_eq!(tuple_clone_count(), before + 1);
    }

    #[test]
    fn unrolled_kernels_match_scalar_reference() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 100] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32) * 0.25 - 3.0).collect();
            let w: Vec<f32> = (0..n).map(|i| 1.0 - (i as f32) * 0.125).collect();
            let fast = dense_dot(&x, &w);
            let slow = dense_dot_scalar(&x, &w);
            assert!(
                (fast - slow).abs() <= 1e-3 * (1.0 + slow.abs()),
                "dot mismatch at n={n}: {fast} vs {slow}"
            );
            let mut wa = w.clone();
            let mut wb = w.clone();
            dense_axpy(0.5, &x, &mut wa);
            dense_axpy_scalar(0.5, &x, &mut wb);
            assert_eq!(wa, wb, "axpy mismatch at n={n}");
        }
    }

    #[test]
    fn kernels_respect_shorter_weight_slices() {
        // `dot`/`axpy_into` historically zip to the shorter slice; the
        // unrolled kernels must preserve that.
        let x = vec![1.0f32; 20];
        let w = vec![2.0f32; 12];
        assert_eq!(dense_dot(&x, &w), 24.0);
        let mut w2 = w.clone();
        dense_axpy(1.0, &x, &mut w2);
        assert_eq!(w2, vec![3.0f32; 12]);
    }

    #[test]
    fn iter_yields_pairs() {
        let d = FeatureVec::Dense(vec![5.0, 6.0]);
        let got: Vec<_> = d.iter().collect();
        assert_eq!(got, vec![(0, 5.0), (1, 6.0)]);
        let s = FeatureVec::sparse(9, vec![2, 8], vec![1.5, 2.5]);
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![(2, 1.5), (8, 2.5)]);
    }

    proptest! {
        #[test]
        fn prop_dense_roundtrip(id in any::<u64>(), label in -1e6f32..1e6,
                                vals in proptest::collection::vec(-1e6f32..1e6, 0..64)) {
            let t = Tuple::dense(id, vals, label);
            let mut buf = Vec::new();
            t.encode(&mut buf);
            prop_assert_eq!(buf.len(), t.encoded_len());
            let (back, used) = Tuple::decode(&buf).unwrap();
            prop_assert_eq!(back, t);
            prop_assert_eq!(used, buf.len());
        }

        #[test]
        fn prop_sparse_roundtrip(id in any::<u64>(), label in -10f32..10.0,
                                 nnz in 0usize..32) {
            let indices: Vec<u32> = (0..nnz as u32).map(|i| i * 3 + 1).collect();
            let values: Vec<f32> = (0..nnz).map(|i| i as f32 * 0.5 - 1.0).collect();
            let dim = 3 * nnz as u32 + 2;
            let t = Tuple::sparse(id, dim, indices, values, label);
            let mut buf = Vec::new();
            t.encode(&mut buf);
            prop_assert_eq!(buf.len(), t.encoded_len());
            let (back, used) = Tuple::decode(&buf).unwrap();
            prop_assert_eq!(back, t);
            prop_assert_eq!(used, buf.len());
        }

        #[test]
        fn prop_decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Tuple::decode(&bytes); // must not panic
        }

        #[test]
        fn prop_sparse_dot_matches_densified(nnz in 0usize..16) {
            let indices: Vec<u32> = (0..nnz as u32).map(|i| i * 2).collect();
            let values: Vec<f32> = (0..nnz).map(|i| (i as f32) - 3.0).collect();
            let dim = (2 * nnz.max(1)) as u32;
            let s = FeatureVec::sparse(dim, indices, values);
            let dense: Vec<f32> = (0..dim as usize).map(|i| s.get(i)).collect();
            let d = FeatureVec::Dense(dense);
            let w: Vec<f32> = (0..dim as usize).map(|i| (i as f32) * 0.1 + 1.0).collect();
            prop_assert!((s.dot(&w) - d.dot(&w)).abs() < 1e-4);
        }
    }
}
