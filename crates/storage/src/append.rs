//! Versioned, appendable block storage: the write path CorgiPile trains on.
//!
//! The paper's block-level sampling is naturally suited to growing data —
//! freshly appended blocks are just more blocks to sample — but [`Table`]
//! is immutable. This module splits the abstraction:
//!
//! * [`TableSnapshot`] — an immutable table pinned at a monotonically
//!   increasing version. Scans and shuffles hold snapshots; plans pin one at
//!   build time, which is what makes `TRAIN` bit-reproducible under
//!   concurrent writers.
//! * [`AppendableTable`] — the single writer behind a table name. Rows
//!   buffer into the tail block of a [`TableBuilder`]; each `INSERT`
//!   statement's rows are journaled as one `CORGIWL1` frame
//!   ([`RT_TABLE_ROWS`]) and fsynced before acknowledgement, and a seal
//!   marker ([`RT_TABLE_SEAL`]) is logged whenever the tail grows past the
//!   configured block size. Recovery is [`Wal::open`]'s
//!   longest-valid-prefix scan: a crash at any write site loses at most the
//!   unacknowledged statement, never an acknowledged row, and a torn tail
//!   is truncated away.
//!
//! The writer also maintains **incremental per-block label moments** (count,
//! Σlabel, Σlabel²) for every sealed block plus the live tail. From these it
//! derives [`AppendableTable::hd_estimate`] — the between-block share of
//! label variance, the same ĥ_D ∈ [0, 1] the cost-based planner otherwise
//! estimates by sampling — so every append keeps the planner's clusteredness
//! evidence fresh without a scan.
//!
//! Crash injection: appends visit [`sites::TABLE_APPEND_ROWS`] before any
//! byte is written and [`sites::TABLE_SEAL_BLOCK`] before a seal marker, in
//! addition to the three WAL sites every frame append already visits.

use crate::codec::{put_bytes, FieldReader};
use crate::error::StorageError;
use crate::fault::{sites, FaultInjector, WriteOutcome};
use crate::retry::RetryPolicy;
use crate::table::{Table, TableBuilder};
use crate::tuple::Tuple;
use crate::wal::Wal;
use crate::Result;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

/// Table-WAL record: one `INSERT` statement's row batch
/// (`count u32 ∥ (seq u64 ∥ tuple encoding)*`).
pub const RT_TABLE_ROWS: u8 = 1;

/// Table-WAL record: a tail block was sealed
/// (`seq u64 ∥ tuples u64 ∥ Σlabel f64 ∥ Σlabel² f64`). Advisory — recovery
/// re-derives seal boundaries by replaying rows — but validated for shape.
pub const RT_TABLE_SEAL: u8 = 2;

/// An immutable table pinned at a specific catalog version.
///
/// Derefs to [`Table`], so read paths built for immutable tables work on a
/// snapshot unchanged; the version rides along for EXPLAIN, reproducibility
/// proofs, and `TRAIN … CONTINUOUS` re-pinning.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    version: u64,
    table: Arc<Table>,
}

impl TableSnapshot {
    /// Pin `table` at `version`.
    pub fn new(version: u64, table: Arc<Table>) -> Self {
        TableSnapshot { version, table }
    }

    /// The catalog version this snapshot was pinned at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The underlying immutable table.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// Unwrap into the shared table handle.
    pub fn into_table(self) -> Arc<Table> {
        self.table
    }
}

impl Deref for TableSnapshot {
    type Target = Table;

    fn deref(&self) -> &Table {
        &self.table
    }
}

/// Per-block label moments: enough to compute block means and the pooled
/// variance decomposition without revisiting tuples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct LabelMoments {
    tuples: u64,
    sum: f64,
    sq_sum: f64,
}

impl LabelMoments {
    fn add(&mut self, label: f32) {
        self.tuples += 1;
        self.sum += label as f64;
        self.sq_sum += (label as f64) * (label as f64);
    }

    fn mean(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.sum / self.tuples as f64
        }
    }
}

fn encode_rows(rows: &[Tuple]) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    let mut body = Vec::new();
    for t in rows {
        body.clear();
        t.encode(&mut body);
        put_bytes(&mut payload, &body);
    }
    payload
}

fn decode_rows(payload: &[u8]) -> Result<Vec<Tuple>> {
    let mut r = FieldReader::new(payload, "table wal rows");
    let count = r.u32()? as usize;
    let mut rows = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let bytes = r.bytes()?;
        let (t, used) = Tuple::decode(bytes)?;
        if used != bytes.len() {
            return Err(StorageError::Corrupt(
                "table wal rows: trailing bytes in tuple field".into(),
            ));
        }
        rows.push(t);
    }
    r.finish()?;
    Ok(rows)
}

/// The append-capable writer behind one table name.
///
/// Exactly one writer exists per name (the catalog serializes appends); it
/// owns the tail [`TableBuilder`] and the table WAL, and publishes immutable
/// [`Table`]s via [`AppendableTable::snapshot_table`]. Appended tuples get
/// sequence ids continuing the base table's positions, which is also the
/// WAL replay rule: on recovery, a row record is applied only if its
/// sequence is past the seeding table's row count — so replay is idempotent
/// whether the writer is re-created after a crash (base = pre-crash
/// snapshot, rows replay) or after a `RECLUSTER` re-registration (base
/// already holds every row, everything skips).
#[derive(Debug)]
pub struct AppendableTable {
    builder: TableBuilder,
    wal: Option<Wal>,
    retry: RetryPolicy,
    sealed: Vec<LabelMoments>,
    tail: LabelMoments,
    tail_bytes: u64,
    replayed_rows: u64,
    appended_rows: u64,
}

impl AppendableTable {
    /// A memory-only writer (no WAL, no durability) seeded from `base`.
    pub fn open_in_memory(base: &Table) -> AppendableTable {
        let mut at = AppendableTable {
            builder: TableBuilder::from_table(base),
            wal: None,
            retry: RetryPolicy::default(),
            sealed: Vec::new(),
            tail: LabelMoments::default(),
            tail_bytes: 0,
            replayed_rows: 0,
            appended_rows: 0,
        };
        at.seed_stats_from(base);
        at
    }

    /// A WAL-backed writer at `wal_path`, seeded from `base`.
    ///
    /// Opening recovers the log's valid prefix (truncating any torn tail)
    /// and replays every row whose sequence lies past `base`'s row count —
    /// the rows acknowledged before a crash that the in-memory catalog lost.
    pub fn open(base: &Table, wal_path: &Path) -> Result<AppendableTable> {
        let (wal, records) = Wal::open(wal_path)?;
        let mut at = AppendableTable {
            builder: TableBuilder::from_table(base),
            wal: Some(wal),
            retry: RetryPolicy::default(),
            sealed: Vec::new(),
            tail: LabelMoments::default(),
            tail_bytes: 0,
            replayed_rows: 0,
            appended_rows: 0,
        };
        at.seed_stats_from(base);
        for rec in records {
            match rec.rtype {
                RT_TABLE_ROWS => {
                    for t in decode_rows(&rec.payload)? {
                        let next = at.builder.tuple_count();
                        if t.id < next {
                            continue; // already contained in the base table
                        }
                        if t.id != next {
                            return Err(StorageError::Corrupt(format!(
                                "table wal: row sequence {} does not continue table at {}",
                                t.id, next
                            )));
                        }
                        at.apply_row(&t, None, false)?;
                        at.replayed_rows += 1;
                    }
                }
                RT_TABLE_SEAL => {
                    // Advisory marker; recovery re-derives seal boundaries
                    // from the replayed rows. Validate the shape so log
                    // corruption can't hide behind "advisory".
                    let mut r = FieldReader::new(&rec.payload, "table wal seal");
                    r.u64()?;
                    r.u64()?;
                    r.f64()?;
                    r.f64()?;
                    r.finish()?;
                }
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "table wal: unknown record type {other}"
                    )));
                }
            }
        }
        Ok(at)
    }

    /// Fold `base`'s existing blocks into the per-block label moments so
    /// ĥ_D estimates cover the whole table, not just appended rows.
    fn seed_stats_from(&mut self, base: &Table) {
        for id in 0..base.num_blocks() {
            let mut m = LabelMoments::default();
            if let Ok(tuples) = base.block_tuples(id) {
                for t in &tuples {
                    m.add(t.label);
                }
            }
            if m.tuples > 0 {
                self.sealed.push(m);
            }
        }
    }

    /// Total rows in the writer (base + appended).
    pub fn num_tuples(&self) -> u64 {
        self.builder.tuple_count()
    }

    /// Rows recovered from the WAL when this writer was opened.
    pub fn replayed_rows(&self) -> u64 {
        self.replayed_rows
    }

    /// Rows acknowledged through [`AppendableTable::append_rows`] since open.
    pub fn appended_rows(&self) -> u64 {
        self.appended_rows
    }

    /// Sealed blocks tracked by the stats accumulator (base blocks included).
    pub fn sealed_blocks(&self) -> usize {
        self.sealed.len()
    }

    /// Rows in the live (unsealed) tail block.
    pub fn tail_tuples(&self) -> u64 {
        self.tail.tuples
    }

    /// The table WAL, if this writer is durable.
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// Append one statement's rows: assign sequence ids, journal them as a
    /// single fsynced WAL frame, then apply them to the tail block (sealing
    /// full blocks as they close). On `Err` the writer must be discarded and
    /// re-opened — exactly the crashed-process contract [`Wal::append`] has.
    pub fn append_rows(
        &mut self,
        mut rows: Vec<Tuple>,
        mut inj: Option<&mut FaultInjector>,
    ) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let first = self.builder.tuple_count();
        for (i, t) in rows.iter_mut().enumerate() {
            t.id = first + i as u64;
        }
        if let Some(i) = inj.as_deref_mut() {
            match i.on_write(sites::TABLE_APPEND_ROWS) {
                WriteOutcome::Ok => {}
                WriteOutcome::Fail(e) => return Err(e),
                // Nothing has been written yet, so a torn write here
                // degenerates to a plain crash: the statement never lands.
                WriteOutcome::Torn { .. } | WriteOutcome::Crash => {
                    return Err(StorageError::Crashed {
                        site: sites::TABLE_APPEND_ROWS.into(),
                    });
                }
            }
        }
        if let Some(wal) = self.wal.as_mut() {
            let payload = encode_rows(&rows);
            wal.append_retry(RT_TABLE_ROWS, &payload, inj.as_deref_mut(), &self.retry)?;
        }
        for t in &rows {
            self.apply_row(t, inj.as_deref_mut(), true)?;
        }
        self.appended_rows += rows.len() as u64;
        Ok(())
    }

    fn apply_row(
        &mut self,
        t: &Tuple,
        inj: Option<&mut FaultInjector>,
        durable: bool,
    ) -> Result<()> {
        self.builder.append(t)?;
        self.tail.add(t.label);
        self.tail_bytes += t.encoded_len() as u64;
        if self.tail_bytes >= self.builder.block_bytes() as u64 {
            self.seal(inj, durable)?;
        }
        Ok(())
    }

    /// Close the tail block: log a seal marker (durable writers only) and
    /// roll its moments into the sealed set.
    fn seal(&mut self, mut inj: Option<&mut FaultInjector>, durable: bool) -> Result<()> {
        if durable {
            if let Some(i) = inj.as_deref_mut() {
                match i.on_write(sites::TABLE_SEAL_BLOCK) {
                    WriteOutcome::Ok => {}
                    WriteOutcome::Fail(e) => return Err(e),
                    // The sealed rows were fsynced by their own row records;
                    // dying here loses nothing acknowledged.
                    WriteOutcome::Torn { .. } | WriteOutcome::Crash => {
                        return Err(StorageError::Crashed {
                            site: sites::TABLE_SEAL_BLOCK.into(),
                        });
                    }
                }
            }
            let tuple_count = self.builder.tuple_count();
            if let Some(wal) = self.wal.as_mut() {
                let mut payload = Vec::with_capacity(32);
                payload.extend_from_slice(&tuple_count.to_le_bytes());
                payload.extend_from_slice(&self.tail.tuples.to_le_bytes());
                payload.extend_from_slice(&self.tail.sum.to_le_bytes());
                payload.extend_from_slice(&self.tail.sq_sum.to_le_bytes());
                wal.append_retry(RT_TABLE_SEAL, &payload, inj, &self.retry)?;
            }
        }
        self.sealed.push(self.tail);
        self.tail = LabelMoments::default();
        self.tail_bytes = 0;
        Ok(())
    }

    /// Publish an immutable point-in-time table under a fresh `table_id`
    /// (each version needs its own id so device/pool caches never alias
    /// blocks across versions).
    pub fn snapshot_table(&self, table_id: u32) -> Table {
        self.builder.snapshot().with_table_id(table_id)
    }

    /// Incremental ĥ_D: the between-block share of label variance, from the
    /// per-block moments the writer maintains. `None` with fewer than two
    /// non-empty blocks (no between-block structure to speak of).
    ///
    /// This is the same clusteredness measure the cost-based planner
    /// otherwise estimates by sampling blocks: ĥ_D → 1 when blocks are pure
    /// (fully clustered data, where tuple-only shuffles fail), ĥ_D → 0 when
    /// every block looks like the global label mix.
    pub fn hd_estimate(&self) -> Option<f64> {
        let mut blocks: Vec<LabelMoments> = self
            .sealed
            .iter()
            .copied()
            .filter(|m| m.tuples > 0)
            .collect();
        if self.tail.tuples > 0 {
            blocks.push(self.tail);
        }
        if blocks.len() < 2 {
            return None;
        }
        let n: f64 = blocks.iter().map(|b| b.tuples as f64).sum();
        let grand_sum: f64 = blocks.iter().map(|b| b.sum).sum();
        let grand_sq: f64 = blocks.iter().map(|b| b.sq_sum).sum();
        let grand_mean = grand_sum / n;
        let total_var = (grand_sq / n - grand_mean * grand_mean).max(0.0);
        if total_var <= 1e-12 {
            return Some(0.0);
        }
        let between: f64 = blocks
            .iter()
            .map(|b| b.tuples as f64 * (b.mean() - grand_mean).powi(2))
            .sum::<f64>()
            / n;
        Some((between / total_var).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::table::TableConfig;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("corgi_append_{}_{name}", std::process::id()))
    }

    fn base_table(n: u64, block_bytes: usize) -> Table {
        let cfg = TableConfig::new("t", 1).with_block_bytes(block_bytes);
        Table::from_tuples(
            cfg,
            (0..n).map(|id| {
                Tuple::dense(
                    id,
                    vec![id as f32, 1.0],
                    if id < n / 2 { 1.0 } else { -1.0 },
                )
            }),
        )
        .unwrap()
    }

    fn row(v: f32, label: f32) -> Tuple {
        Tuple::dense(0, vec![v, v + 1.0], label)
    }

    #[test]
    fn snapshot_pins_while_appends_continue() {
        let base = base_table(100, 4 * crate::page::PAGE_SIZE);
        let mut w = AppendableTable::open_in_memory(&base);
        let snap_v1 = TableSnapshot::new(1, Arc::new(w.snapshot_table(10)));
        w.append_rows(vec![row(1.0, 1.0), row(2.0, -1.0)], None)
            .unwrap();
        let snap_v2 = TableSnapshot::new(2, Arc::new(w.snapshot_table(11)));

        assert_eq!(snap_v1.version(), 1);
        assert_eq!(snap_v1.num_tuples(), 100, "pinned snapshot must not grow");
        assert_eq!(snap_v2.num_tuples(), 102);
        // Appended rows continue the sequence and land in table order.
        assert_eq!(snap_v2.get_tuple(100).unwrap().id, 100);
        assert_eq!(snap_v2.get_tuple(101).unwrap().id, 101);
        assert_eq!(snap_v2.get_tuple(101).unwrap().label, -1.0);
        // Distinct table ids so caches never alias versions.
        assert_ne!(snap_v1.config().table_id, snap_v2.config().table_id);
    }

    #[test]
    fn wal_backed_appends_survive_reopen() {
        let path = tmp("reopen.wal");
        std::fs::remove_file(&path).ok();
        let base = base_table(50, 4 * crate::page::PAGE_SIZE);
        {
            let mut w = AppendableTable::open(&base, &path).unwrap();
            w.append_rows(vec![row(9.0, 1.0), row(8.0, -1.0)], None)
                .unwrap();
            w.append_rows(vec![row(7.0, 1.0)], None).unwrap();
            assert_eq!(w.num_tuples(), 53);
        } // writer dropped without publishing anywhere

        let w2 = AppendableTable::open(&base, &path).unwrap();
        assert_eq!(w2.num_tuples(), 53, "acked rows replay from the WAL");
        assert_eq!(w2.replayed_rows(), 3);
        let t = w2.snapshot_table(99);
        assert_eq!(t.get_tuple(52).unwrap().features.get(0), 7.0);
        assert_eq!(t.get_tuple(52).unwrap().features.get(1), 8.0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replay_skips_rows_already_in_base() {
        let path = tmp("skip.wal");
        std::fs::remove_file(&path).ok();
        let base = base_table(50, 4 * crate::page::PAGE_SIZE);
        let grown = {
            let mut w = AppendableTable::open(&base, &path).unwrap();
            w.append_rows(vec![row(1.0, 1.0), row(2.0, -1.0)], None)
                .unwrap();
            w.snapshot_table(42)
        };
        // Re-seed from the *grown* table (what a RECLUSTER re-registration
        // does): every WAL row is already contained, nothing replays.
        let w2 = AppendableTable::open(&grown, &path).unwrap();
        assert_eq!(w2.replayed_rows(), 0);
        assert_eq!(w2.num_tuples(), 52);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crash_at_append_rows_site_loses_only_the_statement() {
        let path = tmp("crash_stmt.wal");
        std::fs::remove_file(&path).ok();
        let base = base_table(10, 4 * crate::page::PAGE_SIZE);
        let mut w = AppendableTable::open(&base, &path).unwrap();
        w.append_rows(vec![row(1.0, 1.0)], None).unwrap();

        let mut inj =
            FaultInjector::new(FaultPlan::new(1).with_crash_point(sites::TABLE_APPEND_ROWS, 1));
        match w.append_rows(vec![row(2.0, 1.0)], Some(&mut inj)) {
            Err(StorageError::Crashed { site }) => assert_eq!(site, sites::TABLE_APPEND_ROWS),
            other => panic!("expected crash, got {other:?}"),
        }
        drop(w);
        let w2 = AppendableTable::open(&base, &path).unwrap();
        assert_eq!(w2.num_tuples(), 11, "only the acked statement survives");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crash_after_wal_fsync_keeps_the_statement() {
        let path = tmp("crash_post_fsync.wal");
        std::fs::remove_file(&path).ok();
        let base = base_table(10, 4 * crate::page::PAGE_SIZE);
        let mut w = AppendableTable::open(&base, &path).unwrap();
        let mut inj =
            FaultInjector::new(FaultPlan::new(1).with_crash_point(sites::WAL_AFTER_FSYNC, 1));
        assert!(matches!(
            w.append_rows(vec![row(3.0, 1.0)], Some(&mut inj)),
            Err(StorageError::Crashed { .. })
        ));
        drop(w);
        let w2 = AppendableTable::open(&base, &path).unwrap();
        assert_eq!(w2.num_tuples(), 11, "fsynced statement is durable");
        assert_eq!(w2.replayed_rows(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_statement_frame_is_truncated_on_reopen() {
        let path = tmp("torn.wal");
        std::fs::remove_file(&path).ok();
        let base = base_table(10, 4 * crate::page::PAGE_SIZE);
        let mut w = AppendableTable::open(&base, &path).unwrap();
        w.append_rows(vec![row(1.0, 1.0)], None).unwrap();
        let mut inj =
            FaultInjector::new(FaultPlan::new(1).with_torn_write(sites::WAL_BEFORE_APPEND, 7));
        assert!(matches!(
            w.append_rows(vec![row(2.0, 1.0)], Some(&mut inj)),
            Err(StorageError::Crashed { .. })
        ));
        drop(w);
        let w2 = AppendableTable::open(&base, &path).unwrap();
        assert_eq!(w2.num_tuples(), 11);
        assert_eq!(w2.wal().unwrap().torn_tail_bytes(), 7);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sealing_logs_markers_and_survives_seal_site_crash() {
        let path = tmp("seal.wal");
        std::fs::remove_file(&path).ok();
        // One-page blocks so a few rows seal a block.
        let base = base_table(0, crate::page::PAGE_SIZE);
        let mut w = AppendableTable::open(&base, &path).unwrap();
        let blocks_before = w.sealed_blocks();
        // ~60B encoded per row; a PAGE_SIZE block seals after ~140 rows.
        for i in 0..300 {
            w.append_rows(vec![row(i as f32, 1.0)], None).unwrap();
        }
        assert!(w.sealed_blocks() > blocks_before, "tail must seal");

        let mut inj =
            FaultInjector::new(FaultPlan::new(1).with_crash_point(sites::TABLE_SEAL_BLOCK, 1));
        let mut crashed = false;
        for i in 300..600 {
            match w.append_rows(vec![row(i as f32, 1.0)], Some(&mut inj)) {
                Ok(()) => {}
                Err(StorageError::Crashed { site }) => {
                    assert_eq!(site, sites::TABLE_SEAL_BLOCK);
                    crashed = true;
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(crashed, "seal site must fire within 300 single-row appends");
        let acked = w.appended_rows();
        drop(w);
        let w2 = AppendableTable::open(&base, &path).unwrap();
        // The crashing statement's row record hit the WAL before the seal
        // marker, so it survives along with everything acked.
        assert!(w2.replayed_rows() >= acked, "no acked row may be lost");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn hd_estimate_tracks_clusteredness() {
        let small_blocks = crate::page::PAGE_SIZE;
        let base = base_table(0, small_blocks);

        // Clustered: long runs of one label per block → ĥ_D near 1. (At
        // ~25 B/row a PAGE_SIZE block holds ~320 rows; 8000 rows span
        // enough blocks that the one straddling the flip barely matters.)
        let mut clustered = AppendableTable::open_in_memory(&base);
        for batch in 0..80u32 {
            let rows = (0..100)
                .map(|j| {
                    let i = batch * 100 + j;
                    row(i as f32, if i < 4000 { 1.0 } else { -1.0 })
                })
                .collect();
            clustered.append_rows(rows, None).unwrap();
        }
        // Mixed: alternating labels → every block sees the global mix.
        let mut mixed = AppendableTable::open_in_memory(&base);
        for batch in 0..80u32 {
            let rows = (0..100)
                .map(|j| {
                    let i = batch * 100 + j;
                    row(i as f32, if i % 2 == 0 { 1.0 } else { -1.0 })
                })
                .collect();
            mixed.append_rows(rows, None).unwrap();
        }
        let hd_c = clustered.hd_estimate().unwrap();
        let hd_m = mixed.hd_estimate().unwrap();
        assert!(hd_c > 0.9, "clustered stream should give ĥ_D≈1, got {hd_c}");
        assert!(hd_m < 0.1, "mixed stream should give ĥ_D≈0, got {hd_m}");
    }

    #[test]
    fn hd_estimate_needs_two_blocks_and_handles_constant_labels() {
        let base = base_table(0, 1 << 20);
        let mut w = AppendableTable::open_in_memory(&base);
        assert_eq!(w.hd_estimate(), None);
        w.append_rows(vec![row(1.0, 1.0)], None).unwrap();
        assert_eq!(w.hd_estimate(), None, "single tail block: no estimate");

        // Seed a base with blocks of identical labels everywhere.
        let cfg = TableConfig::new("const", 3).with_block_bytes(crate::page::PAGE_SIZE);
        let base = Table::from_tuples(
            cfg,
            (0..500).map(|id| Tuple::dense(id, vec![1.0, 2.0], 1.0)),
        )
        .unwrap();
        let w = AppendableTable::open_in_memory(&base);
        assert_eq!(w.hd_estimate(), Some(0.0), "zero label variance → ĥ_D=0");
    }

    #[test]
    fn foreign_wal_record_type_is_rejected() {
        let path = tmp("foreign_rtype.wal");
        std::fs::remove_file(&path).ok();
        let base = base_table(5, 1 << 20);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(77, b"not a table record", None).unwrap();
        }
        assert!(matches!(
            AppendableTable::open(&base, &path),
            Err(StorageError::Corrupt(m)) if m.contains("unknown record type")
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn row_batch_codec_roundtrips_and_rejects_trailing_bytes() {
        let rows = vec![
            Tuple::dense(5, vec![1.0, 2.0], 1.0),
            Tuple::sparse(6, 100, vec![3, 50], vec![0.5, -0.5], -1.0),
        ];
        let payload = encode_rows(&rows);
        assert_eq!(decode_rows(&payload).unwrap(), rows);
        let mut padded = payload.clone();
        padded.push(0);
        assert!(decode_rows(&padded).is_err());
        assert!(decode_rows(&payload[..payload.len() - 1]).is_err());
    }
}
