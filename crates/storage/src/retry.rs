//! Bounded exponential-backoff retry for block reads.
//!
//! All block readers (executor, loader, buffer pool) share one policy:
//! retry a retryable failure at most `max_retries` times, sleeping
//! `base_backoff_s · multiplier^attempt` (capped at `max_backoff_s`)
//! between attempts. On the simulated device the backoff is charged to the
//! simulated clock, so fault-tolerance *cost* is visible in every I/O
//! report rather than hidden in wall-clock noise.

/// Retry policy with bounded exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry, in seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied per further retry.
    pub multiplier: f64,
    /// Upper bound on a single backoff interval, in seconds.
    pub max_backoff_s: f64,
}

impl Default for RetryPolicy {
    /// 4 retries, 1 ms → 2 ms → 4 ms → 8 ms, capped at 100 ms.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff_s: 1e-3,
            multiplier: 2.0,
            max_backoff_s: 0.1,
        }
    }
}

impl RetryPolicy {
    /// No retries: the first failure is final.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..Default::default()
        }
    }

    /// A policy with `max_retries` retries and default backoff shape.
    pub fn with_max_retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..Default::default()
        }
    }

    /// Backoff before retry number `attempt` (0-based). Monotone
    /// non-decreasing in `attempt` and never negative.
    pub fn backoff(&self, attempt: u32) -> f64 {
        let raw = self.base_backoff_s * self.multiplier.powi(attempt.min(1_000) as i32);
        raw.clamp(0.0, self.max_backoff_s.max(0.0))
    }

    /// Total backoff charged by `attempts` consecutive retries.
    pub fn total_backoff(&self, attempts: u32) -> f64 {
        (0..attempts).map(|a| self.backoff(a)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_doubles_until_cap() {
        let p = RetryPolicy::default();
        assert!((p.backoff(0) - 1e-3).abs() < 1e-12);
        assert!((p.backoff(1) - 2e-3).abs() < 1e-12);
        assert!((p.backoff(2) - 4e-3).abs() < 1e-12);
        assert!(
            (p.backoff(20) - 0.1).abs() < 1e-12,
            "capped at max_backoff_s"
        );
    }

    #[test]
    fn none_disables_retries() {
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn one_policy_drives_read_and_write_retries() {
        // The policy is error-agnostic: retry loops gate on
        // `StorageError::is_retryable`, so the same policy instance governs
        // block reads and WAL appends symmetrically.
        use crate::error::StorageError;
        let read = StorageError::ReadFailed {
            block: 0,
            attempts: 1,
            message: "x".into(),
        };
        let write = StorageError::WriteFailed {
            site: "wal.before_append".into(),
            attempts: 1,
            message: "x".into(),
        };
        assert_eq!(read.is_retryable(), write.is_retryable());
        let crash = StorageError::Crashed {
            site: "wal.after_fsync".into(),
        };
        assert!(!crash.is_retryable(), "no policy may retry a crash");
    }

    proptest! {
        /// Satellite requirement: backoff cost is monotone in attempt count
        /// and never negative, for any policy shape.
        #[test]
        fn prop_backoff_monotone_and_non_negative(
            base in 0.0f64..1.0,
            multiplier in 1.0f64..4.0,
            cap in 0.0f64..10.0,
            attempt in 0u32..64,
        ) {
            let p = RetryPolicy {
                max_retries: 8,
                base_backoff_s: base,
                multiplier,
                max_backoff_s: cap,
            };
            let now = p.backoff(attempt);
            let next = p.backoff(attempt + 1);
            prop_assert!(now >= 0.0);
            prop_assert!(next >= now, "backoff must not shrink: {now} -> {next}");
            prop_assert!(now <= p.max_backoff_s + 1e-12, "backoff must respect the cap");
        }

        #[test]
        fn prop_total_backoff_monotone_in_attempts(
            attempts in 0u32..32,
        ) {
            let p = RetryPolicy::default();
            prop_assert!(p.total_backoff(attempts) >= 0.0);
            prop_assert!(p.total_backoff(attempts + 1) >= p.total_backoff(attempts));
        }
    }
}
