//! Slotted heap pages.
//!
//! PostgreSQL stores tuples in fixed-size (8 KB) slotted pages. We mirror
//! that: a [`Page`] holds a byte payload plus a slot directory mapping slot
//! number → byte offset. Tuples wider than a page (e.g. epsilon/yfcc-like
//! rows with thousands of dense features — which PostgreSQL would TOAST,
//! §7.1.5) are stored in a dedicated *jumbo* page whose byte size equals the
//! tuple size; the table layer accounts for the extra decompression cost
//! when TOAST emulation is enabled.

use crate::error::StorageError;
use crate::tuple::Tuple;
use crate::Result;

/// Standard page size in bytes (PostgreSQL default: 8 KB).
pub const PAGE_SIZE: usize = 8192;

/// A slotted page of encoded tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// Capacity in bytes. `PAGE_SIZE` for regular pages; larger for jumbo
    /// pages holding a single oversized tuple.
    capacity: usize,
    /// Concatenated tuple encodings.
    data: Vec<u8>,
    /// Byte offset of each tuple within `data`.
    slots: Vec<u32>,
}

impl Page {
    /// Create an empty page of standard size.
    pub fn new() -> Self {
        Page {
            capacity: PAGE_SIZE,
            data: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// Create a jumbo page sized to hold exactly one tuple of `bytes` bytes.
    pub fn new_jumbo(bytes: usize) -> Self {
        Page {
            capacity: bytes.max(PAGE_SIZE),
            data: Vec::new(),
            slots: Vec::new(),
        }
    }

    /// True if this page was allocated as a jumbo page.
    pub fn is_jumbo(&self) -> bool {
        self.capacity > PAGE_SIZE
    }

    /// Number of tuples on the page.
    pub fn tuple_count(&self) -> usize {
        self.slots.len()
    }

    /// Bytes currently used by tuple payloads (excluding the slot directory).
    pub fn used_bytes(&self) -> usize {
        self.data.len()
    }

    /// Free payload bytes remaining, accounting 4 bytes of slot overhead per
    /// stored tuple (mimicking PostgreSQL's line pointers).
    pub fn free_bytes(&self) -> usize {
        let overhead = 4 * (self.slots.len() + 1);
        self.capacity.saturating_sub(self.data.len() + overhead)
    }

    /// On-disk footprint of the page in bytes (its full capacity — heap
    /// pages are written whole regardless of fill factor).
    pub fn disk_bytes(&self) -> usize {
        self.capacity
    }

    /// Whether a tuple of `encoded_len` bytes fits in the remaining space.
    pub fn fits(&self, encoded_len: usize) -> bool {
        encoded_len <= self.free_bytes()
    }

    /// Append a tuple. Fails with [`StorageError::PageFull`] if it does not fit.
    pub fn push(&mut self, tuple: &Tuple) -> Result<()> {
        let len = tuple.encoded_len();
        if !self.fits(len) {
            return Err(StorageError::PageFull {
                needed: len,
                free: self.free_bytes(),
            });
        }
        self.slots.push(self.data.len() as u32);
        tuple.encode(&mut self.data);
        Ok(())
    }

    /// Decode the tuple in slot `slot`.
    pub fn tuple(&self, slot: usize) -> Result<Tuple> {
        let off = *self
            .slots
            .get(slot)
            .ok_or_else(|| StorageError::Corrupt(format!("slot {slot} out of range")))?
            as usize;
        Tuple::decode(&self.data[off..]).map(|(t, _)| t)
    }

    /// Iterate all tuples on the page in slot order.
    pub fn tuples(&self) -> PageTuples<'_> {
        PageTuples {
            page: self,
            next: 0,
        }
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator over the tuples of a [`Page`].
pub struct PageTuples<'a> {
    page: &'a Page,
    next: usize,
}

impl Iterator for PageTuples<'_> {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.next >= self.page.tuple_count() {
            return None;
        }
        let t = self.page.tuple(self.next).expect("page self-consistency");
        self.next += 1;
        Some(t)
    }
}

impl ExactSizeIterator for PageTuples<'_> {
    fn len(&self) -> usize {
        self.page.tuple_count() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny(id: u64) -> Tuple {
        Tuple::dense(
            id,
            vec![id as f32, -1.0],
            if id.is_multiple_of(2) { 1.0 } else { -1.0 },
        )
    }

    #[test]
    fn push_and_read_back() {
        let mut p = Page::new();
        for id in 0..10 {
            p.push(&tiny(id)).unwrap();
        }
        assert_eq!(p.tuple_count(), 10);
        for id in 0..10 {
            assert_eq!(p.tuple(id as usize).unwrap(), tiny(id));
        }
        let all: Vec<_> = p.tuples().collect();
        assert_eq!(all.len(), 10);
        assert_eq!(all[3], tiny(3));
    }

    #[test]
    fn page_fills_up_and_rejects() {
        let mut p = Page::new();
        let t = Tuple::dense(0, vec![0.0; 64], 1.0); // 277 bytes encoded
        let mut n = 0;
        while p.fits(t.encoded_len()) {
            p.push(&t).unwrap();
            n += 1;
        }
        assert!(n > 10, "expected a few dozen tuples per page, got {n}");
        let err = p.push(&t).unwrap_err();
        assert!(matches!(err, StorageError::PageFull { .. }));
    }

    #[test]
    fn jumbo_page_holds_oversized_tuple() {
        let t = Tuple::dense(0, vec![1.0; 4000], 1.0); // ~16 KB > PAGE_SIZE
        assert!(t.encoded_len() > PAGE_SIZE);
        let mut p = Page::new_jumbo(t.encoded_len() + 8);
        assert!(p.is_jumbo());
        p.push(&t).unwrap();
        assert_eq!(p.tuple(0).unwrap(), t);
    }

    #[test]
    fn disk_bytes_is_capacity() {
        let p = Page::new();
        assert_eq!(p.disk_bytes(), PAGE_SIZE);
        let j = Page::new_jumbo(50_000);
        assert_eq!(j.disk_bytes(), 50_000);
    }

    #[test]
    fn out_of_range_slot_errors() {
        let p = Page::new();
        assert!(p.tuple(0).is_err());
    }

    #[test]
    fn exact_size_iterator_len() {
        let mut p = Page::new();
        for id in 0..5 {
            p.push(&tiny(id)).unwrap();
        }
        let mut it = p.tuples();
        assert_eq!(it.len(), 5);
        it.next();
        assert_eq!(it.len(), 4);
    }

    proptest! {
        #[test]
        fn prop_page_roundtrips_many_tuples(count in 1usize..40, width in 1usize..16) {
            let mut p = Page::new();
            let mut stored = Vec::new();
            for id in 0..count as u64 {
                let t = Tuple::dense(id, vec![id as f32; width], 1.0);
                if p.fits(t.encoded_len()) {
                    p.push(&t).unwrap();
                    stored.push(t);
                }
            }
            let got: Vec<_> = p.tuples().collect();
            prop_assert_eq!(got, stored);
        }

        #[test]
        fn prop_free_bytes_decreases_monotonically(count in 1usize..30) {
            let mut p = Page::new();
            let mut last = p.free_bytes();
            for id in 0..count as u64 {
                let t = tiny(id);
                if !p.fits(t.encoded_len()) { break; }
                p.push(&t).unwrap();
                let now = p.free_bytes();
                prop_assert!(now < last);
                last = now;
            }
        }
    }
}
