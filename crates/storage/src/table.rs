//! Heap tables: pages + blocks + cost-charged access paths.
//!
//! A [`Table`] is an append-only sequence of slotted pages carved into
//! blocks of roughly `block_bytes` each. All read paths charge a
//! [`SimDevice`] so experiments can account simulated I/O time:
//!
//! * [`Table::scan_block_sequential`] — the No-Shuffle path: blocks read in
//!   order at sequential bandwidth;
//! * [`Table::read_block`] — the CorgiPile path: one seek + block transfer;
//! * [`Table::read_tuple_random`] — the full-shuffle path: one seek + page
//!   transfer per tuple (this is what makes Shuffle Once so expensive);
//! * [`Table::materialize_reordered`] — Shuffle Once's offline shuffle,
//!   modeled as a two-pass external sort (read + write, twice) plus 2×
//!   storage, matching the paper's observations (§3.1, Table 1).

use crate::block::{plan_blocks, BlockId, BlockMeta};
use crate::device::{Access, SimDevice};
use crate::error::StorageError;
use crate::page::{Page, PAGE_SIZE};
use crate::retry::RetryPolicy;
use crate::tuple::{Tuple, TupleId};
use crate::Result;

/// Default block size: 10 MB (the paper's recommended sweet spot, §7.3.4).
pub const DEFAULT_BLOCK_BYTES: usize = 10 << 20;

/// Configuration of a heap table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableConfig {
    /// Table name (for the DB catalog).
    pub name: String,
    /// Numeric id, used to derive cache keys. Must be unique per device.
    pub table_id: u32,
    /// Target block size in bytes.
    pub block_bytes: usize,
    /// Tuples whose encoding exceeds this are considered TOASTed
    /// (compressed out-of-line); reading them is throughput-capped.
    pub toast_threshold: usize,
    /// Effective throughput cap (bytes/s) for TOASTed content — the paper
    /// measures ~130 MB/s for yfcc on both HDD and SSD (§7.3.4).
    pub toast_cap: f64,
}

impl TableConfig {
    /// A config with paper-default parameters.
    pub fn new(name: impl Into<String>, table_id: u32) -> Self {
        TableConfig {
            name: name.into(),
            table_id,
            block_bytes: DEFAULT_BLOCK_BYTES,
            toast_threshold: PAGE_SIZE / 2,
            toast_cap: 130e6,
        }
    }

    /// Override the block size.
    pub fn with_block_bytes(mut self, bytes: usize) -> Self {
        self.block_bytes = bytes;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.block_bytes == 0 {
            return Err(StorageError::InvalidConfig(
                "block_bytes must be > 0".into(),
            ));
        }
        Ok(())
    }
}

/// Incrementally builds a [`Table`] from a tuple stream.
#[derive(Debug)]
pub struct TableBuilder {
    config: TableConfig,
    pages: Vec<Page>,
    tuple_count: u64,
    any_toast: bool,
}

impl TableBuilder {
    /// Start building a table.
    pub fn new(config: TableConfig) -> Result<Self> {
        config.validate()?;
        Ok(TableBuilder {
            config,
            pages: Vec::new(),
            tuple_count: 0,
            any_toast: false,
        })
    }

    /// Append one tuple (placed on the current page, a fresh page, or a
    /// jumbo page if oversized).
    pub fn append(&mut self, tuple: &Tuple) -> Result<()> {
        let len = tuple.encoded_len();
        if len > self.config.toast_threshold {
            self.any_toast = true;
        }
        let fits_current = self.pages.last().map(|p| p.fits(len)).unwrap_or(false);
        if !fits_current {
            let mut fresh = Page::new();
            if !fresh.fits(len) {
                fresh = Page::new_jumbo(len + 16);
            }
            self.pages.push(fresh);
        }
        self.pages
            .last_mut()
            .expect("page pushed above")
            .push(tuple)?;
        self.tuple_count += 1;
        Ok(())
    }

    /// Re-open a finished table for further appends. The builder starts
    /// with a clone of the table's pages, so the table itself stays
    /// immutable — this is how [`AppendableTable`](crate::AppendableTable)
    /// seeds its writer from the currently-registered snapshot.
    pub fn from_table(table: &Table) -> TableBuilder {
        TableBuilder {
            config: table.config.clone(),
            pages: table.pages.clone(),
            tuple_count: table.tuple_count,
            any_toast: table.any_toast,
        }
    }

    /// Tuples appended so far.
    pub fn tuple_count(&self) -> u64 {
        self.tuple_count
    }

    /// Target block size this builder plans blocks against.
    pub fn block_bytes(&self) -> usize {
        self.config.block_bytes
    }

    /// Plan block boundaries over the current pages without consuming the
    /// builder: an immutable point-in-time [`Table`] that shares nothing
    /// mutable with the builder, so appends can continue underneath it.
    pub fn snapshot(&self) -> Table {
        let page_bytes: Vec<usize> = self.pages.iter().map(|p| p.disk_bytes()).collect();
        let page_tuples: Vec<usize> = self.pages.iter().map(|p| p.tuple_count()).collect();
        let blocks = plan_blocks(&page_bytes, &page_tuples, self.config.block_bytes);
        let total_bytes = page_bytes.iter().sum();
        Table {
            config: self.config.clone(),
            pages: self.pages.clone(),
            blocks,
            tuple_count: self.tuple_count,
            total_bytes,
            any_toast: self.any_toast,
        }
    }

    /// Finish: plan block boundaries and seal the table.
    pub fn finish(self) -> Table {
        let page_bytes: Vec<usize> = self.pages.iter().map(|p| p.disk_bytes()).collect();
        let page_tuples: Vec<usize> = self.pages.iter().map(|p| p.tuple_count()).collect();
        let blocks = plan_blocks(&page_bytes, &page_tuples, self.config.block_bytes);
        let total_bytes = page_bytes.iter().sum();
        Table {
            config: self.config,
            pages: self.pages,
            blocks,
            tuple_count: self.tuple_count,
            total_bytes,
            any_toast: self.any_toast,
        }
    }
}

/// An immutable heap table.
#[derive(Debug, Clone)]
pub struct Table {
    config: TableConfig,
    pages: Vec<Page>,
    blocks: Vec<BlockMeta>,
    tuple_count: u64,
    total_bytes: usize,
    any_toast: bool,
}

impl Table {
    /// Build a table from an iterator of tuples.
    pub fn from_tuples<I>(config: TableConfig, tuples: I) -> Result<Table>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut b = TableBuilder::new(config)?;
        for t in tuples {
            b.append(&t)?;
        }
        Ok(b.finish())
    }

    /// Table configuration.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// Number of tuples.
    pub fn num_tuples(&self) -> u64 {
        self.tuple_count
    }

    /// Number of blocks (the paper's `N`).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// On-disk size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Average tuples per block (the paper's `b`).
    pub fn tuples_per_block(&self) -> f64 {
        if self.blocks.is_empty() {
            0.0
        } else {
            self.tuple_count as f64 / self.blocks.len() as f64
        }
    }

    /// Whether any tuple is TOASTed (throughput-capped on read).
    pub fn is_toasted(&self) -> bool {
        self.any_toast
    }

    /// Block metadata.
    pub fn block(&self, id: BlockId) -> Result<&BlockMeta> {
        self.blocks.get(id).ok_or(StorageError::BlockOutOfRange {
            block: id,
            blocks: self.blocks.len(),
        })
    }

    /// All block metadata in table order.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    fn cache_key(&self, block: BlockId) -> u64 {
        ((self.config.table_id as u64) << 32) | block as u64
    }

    fn toast_cap(&self) -> Option<f64> {
        if self.any_toast {
            Some(self.config.toast_cap)
        } else {
            None
        }
    }

    /// Decode the tuples of a block without charging any device (used by
    /// in-memory tooling and tests).
    pub fn block_tuples(&self, id: BlockId) -> Result<Vec<Tuple>> {
        let meta = self.block(id)?.clone();
        let mut out = Vec::with_capacity(meta.tuple_count());
        for p in &self.pages[meta.pages.clone()] {
            out.extend(p.tuples());
        }
        Ok(out)
    }

    /// Read a block with random access: one seek + transfer of the block's
    /// bytes. This is CorgiPile's I/O primitive. Goes through the device's
    /// fault injector (if any) and can therefore fail with a retryable
    /// error; see [`Table::read_block_retry`].
    pub fn read_block(&self, id: BlockId, dev: &mut SimDevice) -> Result<Vec<Tuple>> {
        let meta = self.block(id)?;
        dev.read_guarded(
            self.config.table_id,
            id,
            meta.bytes,
            Access::Random,
            self.toast_cap(),
        )?;
        self.block_tuples(id)
    }

    /// Read a block as part of an in-order sequential scan: the first block
    /// pays a seek, subsequent blocks stream at sequential bandwidth. This
    /// is the No-Shuffle I/O primitive.
    pub fn scan_block_sequential(
        &self,
        id: BlockId,
        first: bool,
        dev: &mut SimDevice,
    ) -> Result<Vec<Tuple>> {
        let meta = self.block(id)?;
        let access = if first {
            Access::Random
        } else {
            Access::Sequential
        };
        dev.read_guarded(
            self.config.table_id,
            id,
            meta.bytes,
            access,
            self.toast_cap(),
        )?;
        self.block_tuples(id)
    }

    /// [`Table::read_block`] with bounded exponential-backoff retries.
    ///
    /// Each retry charges its backoff interval to the simulated clock, so
    /// fault tolerance has a visible I/O cost. When the policy is exhausted
    /// the final error is a [`StorageError::ReadFailed`] carrying the total
    /// attempt count; non-retryable errors surface immediately.
    pub fn read_block_retry(
        &self,
        id: BlockId,
        dev: &mut SimDevice,
        policy: &RetryPolicy,
    ) -> Result<Vec<Tuple>> {
        retry_block_read(id, dev, policy, |dev| self.read_block(id, dev))
    }

    /// [`Table::scan_block_sequential`] with bounded retries (see
    /// [`Table::read_block_retry`]).
    pub fn scan_block_sequential_retry(
        &self,
        id: BlockId,
        first: bool,
        dev: &mut SimDevice,
        policy: &RetryPolicy,
    ) -> Result<Vec<Tuple>> {
        retry_block_read(id, dev, policy, |dev| {
            self.scan_block_sequential(id, first, dev)
        })
    }

    /// Full sequential scan of the table, charging the device.
    pub fn scan_all(&self, dev: &mut SimDevice) -> Result<Vec<Tuple>> {
        let mut out = Vec::with_capacity(self.tuple_count as usize);
        for id in 0..self.num_blocks() {
            out.extend(self.scan_block_sequential(id, id == 0, dev)?);
        }
        Ok(out)
    }

    /// Locate the block and page holding tuple `tid`.
    fn locate(&self, tid: TupleId) -> Result<(BlockId, usize)> {
        if tid >= self.tuple_count {
            return Err(StorageError::Corrupt(format!(
                "tuple {tid} out of range ({} tuples)",
                self.tuple_count
            )));
        }
        let block = self.blocks.partition_point(|b| b.tuples.end <= tid);
        // Find the page within the block.
        let meta = &self.blocks[block];
        let mut first_on_page = meta.tuples.start;
        for p in meta.pages.clone() {
            let cnt = self.pages[p].tuple_count() as u64;
            if tid < first_on_page + cnt {
                return Ok((block, p));
            }
            first_on_page += cnt;
        }
        Err(StorageError::Corrupt(format!(
            "tuple {tid} not found in block {block}"
        )))
    }

    /// Read a single tuple by position with random access: one seek + one
    /// page transfer. The full-shuffle access pattern (map-style dataset on
    /// secondary storage).
    pub fn read_tuple_random(&self, tid: TupleId, dev: &mut SimDevice) -> Result<Tuple> {
        let (block, page) = self.locate(tid)?;
        dev.read(
            Some(self.cache_key(block)),
            self.pages[page].disk_bytes(),
            Access::Random,
            self.toast_cap(),
        );
        self.get_tuple(tid)
    }

    /// Decode a tuple by position without charging a device.
    pub fn get_tuple(&self, tid: TupleId) -> Result<Tuple> {
        let (_, page) = self.locate(tid)?;
        let first_on_page: u64 = self.pages[..page]
            .iter()
            .map(|p| p.tuple_count() as u64)
            .sum();
        self.pages[page].tuple((tid - first_on_page) as usize)
    }

    /// All tuples in table order, without device charges.
    pub fn all_tuples(&self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.tuple_count as usize);
        for p in &self.pages {
            out.extend(p.tuples());
        }
        out
    }

    /// A copy of this table under a fresh `table_id`. Device/pool caches key
    /// extents by `(table_id, block)`, so every published table version must
    /// carry its own id — two versions sharing an id would alias cache
    /// entries across different block contents.
    pub fn with_table_id(&self, table_id: u32) -> Table {
        let mut out = self.clone();
        out.config.table_id = table_id;
        out
    }

    /// Re-plan the block boundaries with a new block size (metadata-only in
    /// spirit; pages are untouched). Used by the SQL surface's
    /// `block_size = …` parameter (§6.1).
    pub fn rechunk(&self, block_bytes: usize) -> Result<Table> {
        if block_bytes == 0 {
            return Err(StorageError::InvalidConfig(
                "block_bytes must be > 0".into(),
            ));
        }
        let page_bytes: Vec<usize> = self.pages.iter().map(|p| p.disk_bytes()).collect();
        let page_tuples: Vec<usize> = self.pages.iter().map(|p| p.tuple_count()).collect();
        let blocks = plan_blocks(&page_bytes, &page_tuples, block_bytes);
        let mut out = self.clone();
        out.config.block_bytes = block_bytes;
        out.blocks = blocks;
        Ok(out)
    }

    /// Materialize a reordered copy (Shuffle Once's offline shuffle).
    ///
    /// Cost model: a two-pass external sort over the table — read + write of
    /// the full data set twice at sequential bandwidth — which matches the
    /// `ORDER BY RANDOM()` plan PostgreSQL uses for MADlib/Bismarck's
    /// pre-shuffle (§7.3.1), and the new copy doubles the storage footprint
    /// (Table 1 "2× data size").
    ///
    /// `order[k]` gives the position in `self` of the tuple that lands at
    /// position `k` of the copy. Tuple `id`s are preserved so order
    /// diagnostics still see original positions.
    pub fn materialize_reordered(
        &self,
        order: &[TupleId],
        new_name: impl Into<String>,
        new_table_id: u32,
        dev: &mut SimDevice,
    ) -> Result<Table> {
        assert_eq!(
            order.len() as u64,
            self.tuple_count,
            "order must be a permutation"
        );
        // Two passes of read+write at sequential bandwidth.
        for _pass in 0..2 {
            dev.read(None, self.total_bytes, Access::Random, self.toast_cap());
            dev.write(self.total_bytes, Access::Sequential);
        }
        let mut cfg = self.config.clone();
        cfg.name = new_name.into();
        cfg.table_id = new_table_id;
        let mut b = TableBuilder::new(cfg)?;
        for &tid in order {
            b.append(&self.get_tuple(tid)?)?;
        }
        Ok(b.finish())
    }
}

/// Run `read` under `policy`: retryable failures back off (charged to the
/// simulated clock) and retry; exhaustion wraps the last error in
/// [`StorageError::ReadFailed`] with the total attempt count.
fn retry_block_read<F>(
    block: BlockId,
    dev: &mut SimDevice,
    policy: &RetryPolicy,
    mut read: F,
) -> Result<Vec<Tuple>>
where
    F: FnMut(&mut SimDevice) -> Result<Vec<Tuple>>,
{
    let mut attempt = 0u32;
    loop {
        match read(dev) {
            Ok(tuples) => return Ok(tuples),
            Err(e) if e.is_retryable() && attempt < policy.max_retries => {
                dev.charge_seconds(policy.backoff(attempt));
                dev.note_retry();
                attempt += 1;
            }
            Err(e) if e.is_retryable() => {
                return Err(StorageError::ReadFailed {
                    block,
                    attempts: attempt + 1,
                    message: e.to_string(),
                });
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn make_table(n: u64, width: usize, block_bytes: usize) -> Table {
        let cfg = TableConfig::new("t", 1).with_block_bytes(block_bytes);
        Table::from_tuples(
            cfg,
            (0..n).map(|id| {
                Tuple::dense(
                    id,
                    vec![id as f32; width],
                    if id % 2 == 0 { 1.0 } else { -1.0 },
                )
            }),
        )
        .unwrap()
    }

    #[test]
    fn build_and_count() {
        let t = make_table(1000, 8, 4 * PAGE_SIZE);
        assert_eq!(t.num_tuples(), 1000);
        assert!(t.num_pages() > 1);
        assert!(t.num_blocks() > 1);
        assert!(t.tuples_per_block() > 0.0);
        assert!(!t.is_toasted());
    }

    #[test]
    fn blocks_cover_all_tuples_in_order() {
        let t = make_table(500, 4, 2 * PAGE_SIZE);
        let mut seen = Vec::new();
        for b in 0..t.num_blocks() {
            seen.extend(t.block_tuples(b).unwrap().into_iter().map(|tp| tp.id));
        }
        let expect: Vec<u64> = (0..500).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn get_tuple_by_position() {
        let t = make_table(300, 4, 2 * PAGE_SIZE);
        for tid in [0u64, 1, 99, 157, 299] {
            assert_eq!(t.get_tuple(tid).unwrap().id, tid);
        }
        assert!(t.get_tuple(300).is_err());
    }

    #[test]
    fn sequential_scan_cheaper_than_block_random_cheaper_than_tuple_random() {
        let t = make_table(5000, 16, 64 * PAGE_SIZE);
        let mut d1 = SimDevice::hdd(0);
        t.scan_all(&mut d1).unwrap();
        let seq = d1.stats().io_seconds;

        let mut d2 = SimDevice::hdd(0);
        for b in 0..t.num_blocks() {
            t.read_block(b, &mut d2).unwrap();
        }
        let blk = d2.stats().io_seconds;

        let mut d3 = SimDevice::hdd(0);
        for tid in 0..t.num_tuples() {
            t.read_tuple_random(tid, &mut d3).unwrap();
        }
        let tup = d3.stats().io_seconds;

        assert!(
            seq <= blk,
            "sequential {seq} should be <= block-random {blk}"
        );
        assert!(
            blk < tup / 50.0,
            "block-random {blk} should be ≪ tuple-random {tup}"
        );
    }

    #[test]
    fn cache_makes_second_epoch_fast() {
        let t = make_table(2000, 16, 16 * PAGE_SIZE);
        let mut dev = SimDevice::hdd(t.total_bytes() * 2);
        t.scan_all(&mut dev).unwrap();
        let first = dev.stats().io_seconds;
        t.scan_all(&mut dev).unwrap();
        let second = dev.stats().io_seconds - first;
        assert!(
            second < first / 10.0,
            "cached epoch {second} not ≪ cold epoch {first}"
        );
    }

    #[test]
    fn toast_detection_and_cap() {
        let cfg = TableConfig::new("wide", 2).with_block_bytes(1 << 20);
        let t = Table::from_tuples(
            cfg,
            (0..20u64).map(|id| Tuple::dense(id, vec![1.0; 4096], 1.0)),
        )
        .unwrap();
        assert!(t.is_toasted());
        let mut ssd = SimDevice::ssd(0);
        t.scan_all(&mut ssd).unwrap();
        let capped = ssd.stats().io_seconds;
        // At 130MB/s cap the time must exceed raw SSD time by ~7x.
        let raw = t.total_bytes() as f64 / 1e9;
        assert!(
            capped > 5.0 * raw,
            "TOAST cap not applied: {capped} vs raw {raw}"
        );
    }

    #[test]
    fn materialize_reordered_preserves_ids_and_charges_io() {
        let t = make_table(200, 4, 2 * PAGE_SIZE);
        let mut order: Vec<u64> = (0..200).rev().collect();
        let mut dev = SimDevice::hdd(0);
        let t2 = t
            .materialize_reordered(&order, "t_shuffled", 9, &mut dev)
            .unwrap();
        assert_eq!(t2.num_tuples(), 200);
        assert_eq!(t2.get_tuple(0).unwrap().id, 199);
        assert_eq!(t2.get_tuple(199).unwrap().id, 0);
        assert!(dev.stats().io_seconds > 0.0);
        assert!(dev.stats().written_bytes as usize >= 2 * t.total_bytes());
        order.clear(); // silence unused-mut lint paranoia
    }

    #[test]
    fn block_out_of_range() {
        let t = make_table(10, 2, PAGE_SIZE);
        assert!(matches!(
            t.block(999),
            Err(StorageError::BlockOutOfRange { .. })
        ));
    }

    #[test]
    fn rechunk_replans_blocks() {
        let t = make_table(500, 4, 2 * PAGE_SIZE);
        let before = t.num_blocks();
        let finer = t.rechunk(PAGE_SIZE).unwrap();
        assert!(finer.num_blocks() > before);
        assert_eq!(finer.num_tuples(), 500);
        assert_eq!(finer.all_tuples(), t.all_tuples());
        assert!(t.rechunk(0).is_err());
        // Tuple ranges still partition.
        let mut next = 0u64;
        for b in finer.blocks() {
            assert_eq!(b.tuples.start, next);
            next = b.tuples.end;
        }
        assert_eq!(next, 500);
    }

    #[test]
    fn zero_block_size_rejected() {
        let cfg = TableConfig::new("bad", 0).with_block_bytes(0);
        assert!(TableBuilder::new(cfg).is_err());
    }

    #[test]
    fn retry_recovers_from_transient_faults_and_charges_backoff() {
        use crate::fault::FaultPlan;
        let t = make_table(400, 4, 4 * PAGE_SIZE);
        let policy = RetryPolicy::default();

        let mut faulty = SimDevice::hdd(0);
        faulty.set_fault_plan(FaultPlan::new(5).with_transient(1, 0, 2));
        let got = t.read_block_retry(0, &mut faulty, &policy).unwrap();

        let mut clean = SimDevice::hdd(0);
        let want = t.read_block_retry(0, &mut clean, &policy).unwrap();
        assert_eq!(got, want, "recovered read must return the same tuples");
        // Two failed attempts: two backoffs plus two wasted seeks.
        let overhead = faulty.stats().io_seconds - clean.stats().io_seconds;
        let expected = policy.total_backoff(2) + 2.0 * clean.profile().seek_latency_s;
        assert!(
            (overhead - expected).abs() < 1e-9,
            "retry cost {overhead} should be {expected}"
        );
        assert_eq!(faulty.stats().retries, 2, "one retry per failed attempt");
        assert_eq!(faulty.stats().faults, 2);
        assert_eq!(clean.stats().retries, 0);
    }

    #[test]
    fn retry_exhaustion_reports_attempts() {
        use crate::fault::FaultPlan;
        let t = make_table(2000, 8, 2 * PAGE_SIZE);
        assert!(t.num_blocks() > 1, "test needs a healthy second block");
        let mut dev = SimDevice::hdd(0);
        dev.set_fault_plan(FaultPlan::new(5).with_permanent(1, 0));
        let policy = RetryPolicy::with_max_retries(3);
        match t.read_block_retry(0, &mut dev, &policy) {
            Err(StorageError::ReadFailed {
                block, attempts, ..
            }) => {
                assert_eq!(block, 0);
                assert_eq!(attempts, 4, "1 try + 3 retries");
            }
            other => panic!("expected exhausted retries, got {other:?}"),
        }
        // Non-faulty blocks still read fine on the same device.
        assert!(t.read_block_retry(1, &mut dev, &policy).is_ok());
    }

    #[test]
    fn retry_does_not_mask_out_of_range() {
        let t = make_table(10, 2, PAGE_SIZE);
        let mut dev = SimDevice::in_memory();
        assert!(matches!(
            t.read_block_retry(999, &mut dev, &RetryPolicy::default()),
            Err(StorageError::BlockOutOfRange { .. })
        ));
    }

    #[test]
    fn sequential_retry_matches_plain_scan_when_fault_free() {
        let t = make_table(300, 4, 2 * PAGE_SIZE);
        let mut a = SimDevice::hdd(0);
        let mut b = SimDevice::hdd(0);
        let policy = RetryPolicy::default();
        for id in 0..t.num_blocks() {
            let x = t.scan_block_sequential(id, id == 0, &mut a).unwrap();
            let y = t
                .scan_block_sequential_retry(id, id == 0, &mut b, &policy)
                .unwrap();
            assert_eq!(x, y);
        }
        assert_eq!(a.stats(), b.stats());
    }

    proptest! {
        #[test]
        fn prop_roundtrip_all_tuples(n in 1u64..400, width in 1usize..12, blk_pages in 1usize..6) {
            let t = make_table(n, width, blk_pages * PAGE_SIZE);
            let all = t.all_tuples();
            prop_assert_eq!(all.len() as u64, n);
            for (i, tp) in all.iter().enumerate() {
                prop_assert_eq!(tp.id, i as u64);
            }
        }

        #[test]
        fn prop_locate_consistent_with_block_ranges(n in 1u64..300) {
            let t = make_table(n, 4, 2 * PAGE_SIZE);
            for tid in 0..n {
                let tp = t.get_tuple(tid).unwrap();
                prop_assert_eq!(tp.id, tid);
            }
            // Every block's tuple range matches its decoded contents.
            for b in 0..t.num_blocks() {
                let meta = t.block(b).unwrap().clone();
                let tuples = t.block_tuples(b).unwrap();
                prop_assert_eq!(tuples.len(), meta.tuple_count());
                if let Some(first) = tuples.first() {
                    prop_assert_eq!(first.id, meta.tuples.start);
                }
            }
        }
    }
}
