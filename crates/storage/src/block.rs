//! Blocks: the unit of CorgiPile's block-level shuffle.
//!
//! A block is a batch of contiguous heap pages (§6.2: `BN = page_num ×
//! page_size / block_size`). Random access at block granularity is nearly as
//! fast as a sequential scan once blocks reach ~10 MB (Appendix A), which is
//! the hardware-efficiency half of CorgiPile's argument.

use std::ops::Range;

/// Index of a block within a table.
pub type BlockId = usize;

/// Metadata describing one block of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// Block index within the table.
    pub id: BlockId,
    /// Pages covered by the block (`[start, end)` into the table's page list).
    pub pages: Range<usize>,
    /// Tuple ids covered by the block (`[start, end)` in table order).
    pub tuples: Range<u64>,
    /// On-disk bytes of the block (sum of page capacities).
    pub bytes: usize,
}

impl BlockMeta {
    /// Number of tuples in the block.
    pub fn tuple_count(&self) -> usize {
        (self.tuples.end - self.tuples.start) as usize
    }

    /// Number of pages in the block.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// Plan the block boundaries for a sequence of page sizes.
///
/// Greedily packs pages into blocks of at most `block_bytes` each; a single
/// page larger than `block_bytes` (a jumbo page) gets its own block. Every
/// page lands in exactly one block and page order is preserved.
pub fn plan_blocks(
    page_bytes: &[usize],
    page_tuples: &[usize],
    block_bytes: usize,
) -> Vec<BlockMeta> {
    assert_eq!(page_bytes.len(), page_tuples.len());
    assert!(block_bytes > 0, "block size must be positive");
    let mut blocks = Vec::new();
    let mut start_page = 0usize;
    let mut start_tuple = 0u64;
    let mut cur_bytes = 0usize;
    let mut cur_tuples = 0u64;
    for (i, (&b, &t)) in page_bytes.iter().zip(page_tuples).enumerate() {
        if cur_bytes > 0 && cur_bytes + b > block_bytes {
            blocks.push(BlockMeta {
                id: blocks.len(),
                pages: start_page..i,
                tuples: start_tuple..start_tuple + cur_tuples,
                bytes: cur_bytes,
            });
            start_page = i;
            start_tuple += cur_tuples;
            cur_bytes = 0;
            cur_tuples = 0;
        }
        cur_bytes += b;
        cur_tuples += t as u64;
    }
    if cur_bytes > 0 {
        blocks.push(BlockMeta {
            id: blocks.len(),
            pages: start_page..page_bytes.len(),
            tuples: start_tuple..start_tuple + cur_tuples,
            bytes: cur_bytes,
        });
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_pages_pack_evenly() {
        let pages = vec![8192usize; 10];
        let tuples = vec![5usize; 10];
        let blocks = plan_blocks(&pages, &tuples, 8192 * 4);
        assert_eq!(blocks.len(), 3); // 4 + 4 + 2 pages
        assert_eq!(blocks[0].pages, 0..4);
        assert_eq!(blocks[1].pages, 4..8);
        assert_eq!(blocks[2].pages, 8..10);
        assert_eq!(blocks[0].tuples, 0..20);
        assert_eq!(blocks[2].tuples, 40..50);
        assert_eq!(blocks[2].tuple_count(), 10);
        assert_eq!(blocks[1].page_count(), 4);
    }

    #[test]
    fn jumbo_page_gets_own_block() {
        let pages = vec![8192, 100_000, 8192];
        let tuples = vec![3, 1, 3];
        let blocks = plan_blocks(&pages, &tuples, 16_384);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[1].bytes, 100_000);
        assert_eq!(blocks[1].tuple_count(), 1);
    }

    #[test]
    fn empty_input_yields_no_blocks() {
        assert!(plan_blocks(&[], &[], 1024).is_empty());
    }

    #[test]
    fn single_block_when_block_size_huge() {
        let pages = vec![8192; 7];
        let tuples = vec![2; 7];
        let blocks = plan_blocks(&pages, &tuples, usize::MAX);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].tuples, 0..14);
    }

    proptest! {
        #[test]
        fn prop_blocks_partition_pages_and_tuples(
            n_pages in 0usize..50,
            block_pages in 1usize..8,
        ) {
            let pages = vec![8192usize; n_pages];
            let tuples: Vec<usize> = (0..n_pages).map(|i| i % 7 + 1).collect();
            let blocks = plan_blocks(&pages, &tuples, 8192 * block_pages);
            // Pages partition: contiguous, disjoint, cover all.
            let mut next_page = 0usize;
            let mut next_tuple = 0u64;
            for (i, b) in blocks.iter().enumerate() {
                prop_assert_eq!(b.id, i);
                prop_assert_eq!(b.pages.start, next_page);
                prop_assert_eq!(b.tuples.start, next_tuple);
                prop_assert!(b.pages.end > b.pages.start);
                next_page = b.pages.end;
                next_tuple = b.tuples.end;
            }
            prop_assert_eq!(next_page, n_pages);
            let total_tuples: u64 = tuples.iter().map(|&t| t as u64).sum();
            prop_assert_eq!(next_tuple, total_tuples);
            // Byte budget respected unless a block is a single (jumbo) page.
            for b in &blocks {
                prop_assert!(b.bytes <= 8192 * block_pages || b.page_count() == 1);
            }
        }
    }
}
