//! Simulated storage devices.
//!
//! The paper's hardware results come from a physical Alibaba Cloud node
//! (HDD: ≤140 MB/s; SSD: ≤1 GB/s). We substitute a first-order analytic
//! device model — each read costs
//!
//! ```text
//! t = seek_latency (random access only) + bytes / bandwidth
//! ```
//!
//! plus an OS page-cache model: blocks that fit in the cache are re-read at
//! memory bandwidth with no seek (this is why the paper's small datasets run
//! at "in-memory I/O bandwidth" after the first epoch, §7.3.3/§7.3.4). Time
//! is accumulated on a simulated clock in [`IoStats`], so experiments are
//! deterministic and machine-independent while preserving exactly the
//! latency/bandwidth asymmetry the paper's evaluation depends on
//! (Appendix A, Figure 20).

use crate::error::StorageError;
use crate::fault::{FaultInjector, FaultPlan, ReadOutcome};
use crate::Result;
use corgipile_telemetry::{Counter, Gauge, Telemetry};
use std::collections::HashMap;

/// How a read reaches the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Random access: pays the seek latency, then transfers.
    Random,
    /// Sequential continuation of the previous read: transfer only.
    Sequential,
}

/// Latency/bandwidth profile of a storage device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name ("hdd", "ssd", "memory").
    pub name: String,
    /// Cost of one random-access operation in seconds (HDD seek + rotate,
    /// SSD read latency, DRAM access).
    pub seek_latency_s: f64,
    /// Sustained transfer bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl DeviceProfile {
    /// Magnetic disk: ~8 ms seek, 140 MB/s (paper §7.1.1).
    pub fn hdd() -> Self {
        DeviceProfile {
            name: "hdd".into(),
            seek_latency_s: 8e-3,
            bandwidth: 140e6,
        }
    }

    /// NVMe-class SSD: ~0.1 ms latency, 1 GB/s (paper §7.1.1).
    pub fn ssd() -> Self {
        DeviceProfile {
            name: "ssd".into(),
            seek_latency_s: 1e-4,
            bandwidth: 1e9,
        }
    }

    /// HDD profile for experiments scaled down by `scale`.
    ///
    /// The paper's datasets are GBs with 10 MB blocks; ours are `scale`×
    /// smaller with `scale`× smaller blocks. Dividing the seek latency by
    /// the same factor preserves the seek-to-transfer ratio — and therefore
    /// every relative result (which strategy wins, by what factor) — while
    /// letting experiments finish in milliseconds of simulated time.
    pub fn hdd_scaled(scale: f64) -> Self {
        assert!(scale >= 1.0);
        DeviceProfile {
            name: "hdd".into(),
            seek_latency_s: 8e-3 / scale,
            bandwidth: 140e6,
        }
    }

    /// SSD profile for experiments scaled down by `scale` (see
    /// [`DeviceProfile::hdd_scaled`]).
    pub fn ssd_scaled(scale: f64) -> Self {
        assert!(scale >= 1.0);
        DeviceProfile {
            name: "ssd".into(),
            seek_latency_s: 1e-4 / scale,
            bandwidth: 1e9,
        }
    }

    /// Main memory (used for the OS cache tier): ~10 GB/s, negligible latency.
    pub fn memory() -> Self {
        DeviceProfile {
            name: "memory".into(),
            seek_latency_s: 1e-7,
            bandwidth: 10e9,
        }
    }

    /// Time to read `bytes` with the given access pattern.
    pub fn read_time(&self, bytes: usize, access: Access) -> f64 {
        let seek = match access {
            Access::Random => self.seek_latency_s,
            Access::Sequential => 0.0,
        };
        seek + bytes as f64 / self.bandwidth
    }

    /// Effective throughput (bytes/s) when reading random chunks of
    /// `chunk_bytes` — the quantity plotted in Appendix Figure 20.
    pub fn random_read_throughput(&self, chunk_bytes: usize) -> f64 {
        chunk_bytes as f64 / self.read_time(chunk_bytes, Access::Random)
    }
}

/// OS page-cache configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Cache capacity in bytes. Zero disables caching.
    pub capacity: usize,
    /// Profile used for cache hits (memory speed).
    pub hit_profile: DeviceProfile,
}

impl CacheConfig {
    /// A cache of `capacity` bytes served at memory speed.
    pub fn with_capacity(capacity: usize) -> Self {
        CacheConfig {
            capacity,
            hit_profile: DeviceProfile::memory(),
        }
    }

    /// No caching: every read hits the device (the paper clears the OS cache
    /// before each experiment; this keeps it cleared).
    pub fn disabled() -> Self {
        Self::with_capacity(0)
    }
}

/// Counters accumulated by a [`SimDevice`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IoStats {
    /// Random read operations issued to the underlying device.
    pub random_reads: u64,
    /// Sequential read operations issued to the underlying device.
    pub sequential_reads: u64,
    /// Bytes transferred from the underlying device.
    pub device_bytes: u64,
    /// Bytes served from the cache.
    pub cache_bytes: u64,
    /// Bytes written to the device.
    pub written_bytes: u64,
    /// Reads served entirely from the cache (one per cache-resident read).
    pub cache_hits: u64,
    /// Retry attempts recorded via [`SimDevice::note_retry`].
    pub retries: u64,
    /// Read attempts that failed with an injected fault.
    pub faults: u64,
    /// Total simulated I/O time in seconds.
    pub io_seconds: f64,
}

impl IoStats {
    /// Total bytes read through the device (cache + device tiers).
    pub fn total_read_bytes(&self) -> u64 {
        self.device_bytes + self.cache_bytes
    }

    /// Total read operations (device tier + cache hits).
    pub fn total_reads(&self) -> u64 {
        self.random_reads + self.sequential_reads + self.cache_hits
    }

    /// Fraction of read operations served from the cache (0 when idle).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Accumulate the `before` → `after` change of another stats object
    /// into `self`. Counters saturate at zero so a [`SimDevice::reset`]
    /// between the snapshots never underflows.
    pub fn add_delta(&mut self, before: &IoStats, after: &IoStats) {
        self.random_reads += after.random_reads.saturating_sub(before.random_reads);
        self.sequential_reads += after
            .sequential_reads
            .saturating_sub(before.sequential_reads);
        self.device_bytes += after.device_bytes.saturating_sub(before.device_bytes);
        self.cache_bytes += after.cache_bytes.saturating_sub(before.cache_bytes);
        self.written_bytes += after.written_bytes.saturating_sub(before.written_bytes);
        self.cache_hits += after.cache_hits.saturating_sub(before.cache_hits);
        self.retries += after.retries.saturating_sub(before.retries);
        self.faults += after.faults.saturating_sub(before.faults);
        self.io_seconds += (after.io_seconds - before.io_seconds).max(0.0);
    }
}

/// Pre-resolved telemetry instruments mirroring [`IoStats`]. Disabled
/// handles make every update a no-op, so an un-instrumented device pays
/// only an `Option` branch per counter.
#[derive(Debug, Clone, Default)]
struct DeviceMetrics {
    random_reads: Counter,
    sequential_reads: Counter,
    device_bytes: Counter,
    cache_bytes: Counter,
    cache_hits: Counter,
    written_bytes: Counter,
    retries: Counter,
    faults: Counter,
    io_seconds: Gauge,
}

impl DeviceMetrics {
    fn resolve(telemetry: &Telemetry) -> Self {
        DeviceMetrics {
            random_reads: telemetry.counter("storage.device.random_reads"),
            sequential_reads: telemetry.counter("storage.device.sequential_reads"),
            device_bytes: telemetry.counter("storage.device.device_bytes"),
            cache_bytes: telemetry.counter("storage.device.cache_bytes"),
            cache_hits: telemetry.counter("storage.device.cache_hits"),
            written_bytes: telemetry.counter("storage.device.written_bytes"),
            retries: telemetry.counter("storage.device.retries"),
            faults: telemetry.counter("storage.device.faults"),
            io_seconds: telemetry.gauge("storage.device.io_seconds"),
        }
    }
}

/// A deterministic simulated device with an OS page cache.
///
/// Reads are keyed: passing a stable `key` (e.g. `(table_id, block_id)`
/// hashed to `u64`) enables cache residency tracking for that extent.
/// Unkeyed reads always hit the device.
#[derive(Debug, Clone)]
pub struct SimDevice {
    profile: DeviceProfile,
    cache: CacheConfig,
    /// Resident extents: key → (bytes, last-use stamp) for LRU eviction.
    resident: HashMap<u64, (usize, u64)>,
    resident_bytes: usize,
    stamp: u64,
    stats: IoStats,
    /// Optional deterministic fault injector consulted by guarded reads.
    injector: Option<FaultInjector>,
    /// Shared observability handle (disabled by default).
    telemetry: Telemetry,
    /// Instruments resolved from `telemetry`; no-ops when disabled.
    metrics: DeviceMetrics,
}

impl SimDevice {
    /// Create a device with the given profile and cache.
    pub fn new(profile: DeviceProfile, cache: CacheConfig) -> Self {
        SimDevice {
            profile,
            cache,
            resident: HashMap::new(),
            resident_bytes: 0,
            stamp: 0,
            stats: IoStats::default(),
            injector: None,
            telemetry: Telemetry::disabled(),
            metrics: DeviceMetrics::default(),
        }
    }

    /// Attach a telemetry handle; device counters and the simulated clock
    /// are mirrored into it from this point on. Pass
    /// [`Telemetry::disabled`] to opt back out.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.metrics = DeviceMetrics::resolve(&telemetry);
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle (disabled unless
    /// [`SimDevice::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// HDD with a cache of `cache_bytes`.
    pub fn hdd(cache_bytes: usize) -> Self {
        Self::new(
            DeviceProfile::hdd(),
            CacheConfig::with_capacity(cache_bytes),
        )
    }

    /// SSD with a cache of `cache_bytes`.
    pub fn ssd(cache_bytes: usize) -> Self {
        Self::new(
            DeviceProfile::ssd(),
            CacheConfig::with_capacity(cache_bytes),
        )
    }

    /// Scale-preserving HDD (see [`DeviceProfile::hdd_scaled`]).
    pub fn hdd_scaled(scale: f64, cache_bytes: usize) -> Self {
        Self::new(
            DeviceProfile::hdd_scaled(scale),
            CacheConfig::with_capacity(cache_bytes),
        )
    }

    /// Scale-preserving SSD (see [`DeviceProfile::ssd_scaled`]).
    pub fn ssd_scaled(scale: f64, cache_bytes: usize) -> Self {
        Self::new(
            DeviceProfile::ssd_scaled(scale),
            CacheConfig::with_capacity(cache_bytes),
        )
    }

    /// Pure in-memory device (no meaningful I/O cost).
    pub fn in_memory() -> Self {
        Self::new(DeviceProfile::memory(), CacheConfig::disabled())
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Reset counters and cache (paper: "we clear the OS cache before
    /// running each experiment").
    pub fn reset(&mut self) {
        self.resident.clear();
        self.resident_bytes = 0;
        self.stamp = 0;
        self.stats = IoStats::default();
    }

    /// Drop cache contents but keep counters.
    pub fn drop_cache(&mut self) {
        self.resident.clear();
        self.resident_bytes = 0;
    }

    /// Read `bytes` from extent `key` (if `Some`, cache-tracked).
    ///
    /// `throughput_cap` optionally caps the effective transfer rate — used
    /// to emulate TOAST decompression, which the paper measures to bottleneck
    /// yfcc/epsilon reads at ~130 MB/s on both HDD and SSD (§7.3.4).
    ///
    /// Returns the simulated seconds consumed by this read.
    pub fn read(
        &mut self,
        key: Option<u64>,
        bytes: usize,
        access: Access,
        throughput_cap: Option<f64>,
    ) -> f64 {
        let cached = key.map(|k| self.touch(k)).unwrap_or(false);
        let profile = if cached {
            &self.cache.hit_profile
        } else {
            &self.profile
        };
        let mut time = profile.read_time(bytes, access);
        if let Some(cap) = throughput_cap {
            // A slower decompression/transform stage bounds throughput.
            time = time.max(bytes as f64 / cap);
        }
        if cached {
            self.stats.cache_bytes += bytes as u64;
            self.stats.cache_hits += 1;
            self.metrics.cache_bytes.add(bytes as u64);
            self.metrics.cache_hits.inc();
        } else {
            self.stats.device_bytes += bytes as u64;
            self.metrics.device_bytes.add(bytes as u64);
            match access {
                Access::Random => {
                    self.stats.random_reads += 1;
                    self.metrics.random_reads.inc();
                }
                Access::Sequential => {
                    self.stats.sequential_reads += 1;
                    self.metrics.sequential_reads.inc();
                }
            }
            if let Some(k) = key {
                self.admit(k, bytes);
            }
        }
        self.stats.io_seconds += time;
        self.metrics.io_seconds.set(self.stats.io_seconds);
        time
    }

    /// Install a fault injector; subsequent guarded reads consult it.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Convenience: install an injector executing `plan` from scratch.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Remove and return the fault injector.
    pub fn clear_fault_injector(&mut self) -> Option<FaultInjector> {
        self.injector.take()
    }

    /// Read block `block` of table `table_id` through the fault injector.
    ///
    /// The extent key matches the one `Table` derives
    /// (`table_id << 32 | block`), so residency tracking is shared with
    /// [`SimDevice::read`]. Cache-resident extents bypass injection — a
    /// storage fault cannot strike data already in memory. A failed attempt
    /// still costs simulated time: the seek that discovered the failure, or
    /// the full transfer for a checksum mismatch (the bytes crossed the bus
    /// before verification rejected them).
    pub fn read_guarded(
        &mut self,
        table_id: u32,
        block: usize,
        bytes: usize,
        access: Access,
        throughput_cap: Option<f64>,
    ) -> Result<f64> {
        let key = ((table_id as u64) << 32) | block as u64;
        let resident = self.is_resident(key);
        if let Some(injector) = self.injector.as_mut().filter(|_| !resident) {
            let outcome = injector.on_read(table_id, block);
            match outcome {
                ReadOutcome::Ok => {}
                ReadOutcome::Delay(seconds) => {
                    self.stats.io_seconds += seconds;
                    self.metrics.io_seconds.set(self.stats.io_seconds);
                }
                ReadOutcome::Fail(e) => {
                    let wasted = match &e {
                        StorageError::ChecksumMismatch { .. } => {
                            self.profile.read_time(bytes, access)
                        }
                        _ => self.profile.seek_latency_s,
                    };
                    self.stats.io_seconds += wasted;
                    self.stats.faults += 1;
                    self.metrics.faults.inc();
                    self.metrics.io_seconds.set(self.stats.io_seconds);
                    return Err(e);
                }
            }
        }
        Ok(self.read(Some(key), bytes, access, throughput_cap))
    }

    /// Write `bytes` (e.g. Shuffle Once materializing a shuffled copy).
    /// Returns the simulated seconds consumed.
    pub fn write(&mut self, bytes: usize, access: Access) -> f64 {
        let time = self.profile.read_time(bytes, access);
        self.stats.written_bytes += bytes as u64;
        self.stats.io_seconds += time;
        self.metrics.written_bytes.add(bytes as u64);
        self.metrics.io_seconds.set(self.stats.io_seconds);
        time
    }

    /// Charge an explicit amount of simulated I/O time (used by composite
    /// cost models such as double-buffer overlap accounting).
    pub fn charge_seconds(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "cannot charge negative time");
        self.stats.io_seconds += seconds;
        self.metrics.io_seconds.set(self.stats.io_seconds);
    }

    /// Record one retry attempt (called by retry loops such as
    /// `retry_block_read` each time a failed read is re-attempted).
    pub fn note_retry(&mut self) {
        self.stats.retries += 1;
        self.metrics.retries.inc();
    }

    /// Whether extent `key` is currently cache-resident.
    pub fn is_resident(&self, key: u64) -> bool {
        self.resident.contains_key(&key)
    }

    fn touch(&mut self, key: u64) -> bool {
        self.stamp += 1;
        if let Some(entry) = self.resident.get_mut(&key) {
            entry.1 = self.stamp;
            true
        } else {
            false
        }
    }

    fn admit(&mut self, key: u64, bytes: usize) {
        if bytes > self.cache.capacity {
            return;
        }
        while self.resident_bytes + bytes > self.cache.capacity {
            // Evict the least recently used extent.
            let victim = self
                .resident
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&k, &(b, _))| (k, b));
            match victim {
                Some((k, b)) => {
                    self.resident.remove(&k);
                    self.resident_bytes -= b;
                }
                None => return,
            }
        }
        self.stamp += 1;
        self.resident.insert(key, (bytes, self.stamp));
        self.resident_bytes += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hdd_random_tuple_reads_are_brutally_slow() {
        // Figure 20's premise: random per-tuple reads on HDD are orders of
        // magnitude slower than sequential scans.
        let hdd = DeviceProfile::hdd();
        let tuple = 150; // bytes
        let per_tuple_random = hdd.read_time(tuple, Access::Random);
        let per_tuple_seq = hdd.read_time(tuple, Access::Sequential);
        assert!(per_tuple_random / per_tuple_seq > 1000.0);
    }

    #[test]
    fn ten_mb_blocks_approach_sequential_bandwidth() {
        // Appendix A: at ~10 MB blocks, random block reads ≈ sequential scan.
        for profile in [DeviceProfile::hdd(), DeviceProfile::ssd()] {
            let tp = profile.random_read_throughput(10 << 20);
            assert!(
                tp > 0.85 * profile.bandwidth,
                "{}: throughput {tp:.0} below 85% of {}",
                profile.name,
                profile.bandwidth
            );
        }
    }

    #[test]
    fn small_random_reads_waste_bandwidth() {
        let hdd = DeviceProfile::hdd();
        let tp_small = hdd.random_read_throughput(64 << 10);
        assert!(tp_small < 0.1 * hdd.bandwidth);
    }

    #[test]
    fn cache_hit_is_fast_and_counted() {
        let mut dev = SimDevice::hdd(1 << 20);
        let t1 = dev.read(Some(1), 100_000, Access::Random, None);
        let t2 = dev.read(Some(1), 100_000, Access::Random, None);
        assert!(t2 < t1 / 100.0, "cache hit {t2} not ≪ miss {t1}");
        assert_eq!(dev.stats().device_bytes, 100_000);
        assert_eq!(dev.stats().cache_bytes, 100_000);
        assert!(dev.is_resident(1));
    }

    #[test]
    fn cache_evicts_lru() {
        let mut dev = SimDevice::hdd(250_000);
        dev.read(Some(1), 100_000, Access::Random, None);
        dev.read(Some(2), 100_000, Access::Random, None);
        dev.read(Some(1), 100_000, Access::Random, None); // touch 1
        dev.read(Some(3), 100_000, Access::Random, None); // evicts 2
        assert!(dev.is_resident(1));
        assert!(!dev.is_resident(2));
        assert!(dev.is_resident(3));
    }

    #[test]
    fn oversized_extent_bypasses_cache() {
        let mut dev = SimDevice::hdd(1000);
        dev.read(Some(9), 10_000, Access::Random, None);
        assert!(!dev.is_resident(9));
        // Second read still hits the device.
        dev.read(Some(9), 10_000, Access::Random, None);
        assert_eq!(dev.stats().device_bytes, 20_000);
    }

    #[test]
    fn throughput_cap_emulates_toast() {
        let mut dev = SimDevice::ssd(usize::MAX);
        // 130 MB/s cap on a 1 GB/s SSD: the cap dominates.
        let t = dev.read(Some(5), 130_000_000, Access::Sequential, Some(130e6));
        assert!((t - 1.0).abs() < 0.05, "expected ~1s, got {t}");
        // Even cached reads stay capped (decompression is CPU-bound).
        let t2 = dev.read(Some(5), 130_000_000, Access::Sequential, Some(130e6));
        assert!((t2 - 1.0).abs() < 0.05, "expected ~1s cached, got {t2}");
    }

    #[test]
    fn write_accumulates() {
        let mut dev = SimDevice::hdd(0);
        let t = dev.write(140_000_000, Access::Sequential);
        assert!((t - 1.0).abs() < 0.01);
        assert_eq!(dev.stats().written_bytes, 140_000_000);
    }

    #[test]
    fn reset_clears_everything() {
        let mut dev = SimDevice::hdd(1 << 20);
        dev.read(Some(1), 1000, Access::Random, None);
        dev.reset();
        assert_eq!(dev.stats(), &IoStats::default());
        assert!(!dev.is_resident(1));
    }

    #[test]
    fn drop_cache_keeps_counters() {
        let mut dev = SimDevice::hdd(1 << 20);
        dev.read(Some(1), 1000, Access::Random, None);
        dev.drop_cache();
        assert!(!dev.is_resident(1));
        assert_eq!(dev.stats().device_bytes, 1000);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn charge_negative_panics() {
        SimDevice::in_memory().charge_seconds(-1.0);
    }

    #[test]
    fn cache_hit_vs_miss_byte_and_op_accounting() {
        let mut dev = SimDevice::hdd(1 << 20);
        dev.read(Some(1), 60_000, Access::Random, None); // miss
        dev.read(Some(1), 60_000, Access::Random, None); // hit
        dev.read(Some(1), 60_000, Access::Sequential, None); // hit
        dev.read(None, 40_000, Access::Sequential, None); // unkeyed: device
        let s = dev.stats();
        assert_eq!(s.device_bytes, 100_000);
        assert_eq!(s.cache_bytes, 120_000);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.random_reads, 1);
        assert_eq!(s.sequential_reads, 1);
        assert_eq!(s.total_read_bytes(), 220_000);
        assert_eq!(s.total_reads(), 4);
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_and_drop_cache_semantics_for_extended_counters() {
        let mut dev = SimDevice::hdd(1 << 20);
        dev.read(Some(1), 1000, Access::Random, None);
        dev.read(Some(1), 1000, Access::Random, None);
        dev.note_retry();
        // drop_cache: residency gone, every counter preserved.
        dev.drop_cache();
        assert_eq!(dev.stats().cache_hits, 1);
        assert_eq!(dev.stats().retries, 1);
        assert_eq!(dev.stats().device_bytes, 1000);
        // The next keyed read misses again (cache really dropped).
        dev.read(Some(1), 1000, Access::Random, None);
        assert_eq!(dev.stats().cache_hits, 1);
        assert_eq!(dev.stats().device_bytes, 2000);
        // reset: everything back to zero.
        dev.reset();
        assert_eq!(dev.stats(), &IoStats::default());
    }

    #[test]
    fn failed_attempts_charge_clock_exactly_once_per_attempt() {
        // Two transient failures on (3,7): each failed attempt costs exactly
        // one seek; the succeeding attempt costs a full random read.
        let mut dev = SimDevice::hdd(0);
        dev.set_fault_plan(crate::fault::FaultPlan::new(1).with_transient(3, 7, 2));
        let seek = dev.profile().seek_latency_s;
        let full = dev.profile().read_time(50_000, Access::Random);
        dev.read_guarded(3, 7, 50_000, Access::Random, None)
            .unwrap_err();
        assert!((dev.stats().io_seconds - seek).abs() < 1e-12);
        dev.read_guarded(3, 7, 50_000, Access::Random, None)
            .unwrap_err();
        assert!((dev.stats().io_seconds - 2.0 * seek).abs() < 1e-12);
        dev.read_guarded(3, 7, 50_000, Access::Random, None)
            .unwrap();
        assert!((dev.stats().io_seconds - (2.0 * seek + full)).abs() < 1e-12);
        assert_eq!(dev.stats().faults, 2);
    }

    #[test]
    fn telemetry_mirrors_device_counters() {
        let tel = Telemetry::enabled();
        let mut dev = SimDevice::hdd(1 << 20);
        dev.set_telemetry(tel.clone());
        dev.read(Some(1), 5000, Access::Random, None);
        dev.read(Some(1), 5000, Access::Random, None);
        dev.write(2000, Access::Sequential);
        dev.note_retry();
        assert_eq!(tel.counter("storage.device.random_reads").get(), 1);
        assert_eq!(tel.counter("storage.device.cache_hits").get(), 1);
        assert_eq!(tel.counter("storage.device.device_bytes").get(), 5000);
        assert_eq!(tel.counter("storage.device.cache_bytes").get(), 5000);
        assert_eq!(tel.counter("storage.device.written_bytes").get(), 2000);
        assert_eq!(tel.counter("storage.device.retries").get(), 1);
        let clock = tel.gauge("storage.device.io_seconds").get();
        assert!((clock - dev.stats().io_seconds).abs() < 1e-12);
    }

    #[test]
    fn disabled_telemetry_leaves_device_untouched() {
        let mut plain = SimDevice::hdd(1 << 20);
        let mut wired = SimDevice::hdd(1 << 20);
        wired.set_telemetry(Telemetry::disabled());
        for dev in [&mut plain, &mut wired] {
            dev.read(Some(1), 5000, Access::Random, None);
            dev.read(Some(1), 5000, Access::Random, None);
        }
        assert_eq!(plain.stats(), wired.stats());
        assert!(!wired.telemetry().is_enabled());
    }

    #[test]
    fn guarded_read_without_injector_matches_plain_read() {
        let mut a = SimDevice::hdd(0);
        let mut b = SimDevice::hdd(0);
        let ta = a.read_guarded(3, 7, 50_000, Access::Random, None).unwrap();
        let tb = b.read(Some((3u64 << 32) | 7), 50_000, Access::Random, None);
        assert_eq!(ta, tb);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn guarded_read_injects_and_charges_failed_attempts() {
        let mut dev = SimDevice::hdd(0);
        dev.set_fault_plan(crate::fault::FaultPlan::new(1).with_transient(3, 7, 1));
        let before = dev.stats().io_seconds;
        let err = dev
            .read_guarded(3, 7, 50_000, Access::Random, None)
            .unwrap_err();
        assert!(err.is_retryable());
        let after_fail = dev.stats().io_seconds;
        assert!(
            after_fail > before,
            "failed attempt must cost simulated time"
        );
        // Second attempt succeeds (transient fault exhausted).
        dev.read_guarded(3, 7, 50_000, Access::Random, None)
            .unwrap();
        assert_eq!(dev.fault_injector().unwrap().stats().transient_failures, 1);
    }

    #[test]
    fn guarded_read_latency_spike_charges_clock() {
        let mut dev = SimDevice::ssd(0);
        dev.set_fault_plan(crate::fault::FaultPlan::new(1).with_latency_spike(1, 0, 0.5));
        let t_spiked = dev.read_guarded(1, 0, 1000, Access::Random, None).unwrap();
        let mut plain = SimDevice::ssd(0);
        let t_plain = plain
            .read_guarded(1, 0, 1000, Access::Random, None)
            .unwrap();
        // The returned per-read time excludes the spike, but the clock
        // includes it.
        assert_eq!(t_spiked, t_plain);
        assert!(dev.stats().io_seconds >= plain.stats().io_seconds + 0.5 - 1e-12);
    }

    #[test]
    fn cache_resident_extents_bypass_injection() {
        let mut dev = SimDevice::hdd(1 << 20);
        // Warm the cache with no faults, then make the block permanently bad.
        dev.read_guarded(1, 0, 10_000, Access::Random, None)
            .unwrap();
        dev.set_fault_plan(crate::fault::FaultPlan::new(1).with_permanent(1, 0));
        dev.read_guarded(1, 0, 10_000, Access::Random, None)
            .expect("cached read must not fault");
        // Once evicted, the fault strikes.
        dev.drop_cache();
        assert!(dev
            .read_guarded(1, 0, 10_000, Access::Random, None)
            .is_err());
    }

    proptest! {
        #[test]
        fn prop_read_time_monotone_in_bytes(a in 1usize..1_000_000, b in 1usize..1_000_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            for p in [DeviceProfile::hdd(), DeviceProfile::ssd(), DeviceProfile::memory()] {
                prop_assert!(p.read_time(lo, Access::Random) <= p.read_time(hi, Access::Random));
                prop_assert!(p.read_time(lo, Access::Sequential) <= p.read_time(hi, Access::Sequential));
            }
        }

        #[test]
        fn prop_random_never_cheaper_than_sequential(bytes in 0usize..10_000_000) {
            for p in [DeviceProfile::hdd(), DeviceProfile::ssd()] {
                prop_assert!(p.read_time(bytes, Access::Random) >= p.read_time(bytes, Access::Sequential));
            }
        }

        #[test]
        fn prop_throughput_increases_with_block_size(shift in 10u32..26) {
            let p = DeviceProfile::hdd();
            let small = p.random_read_throughput(1 << shift);
            let large = p.random_read_throughput(1 << (shift + 1));
            prop_assert!(large > small);
        }

        #[test]
        fn prop_io_seconds_never_decreases(ops in proptest::collection::vec((0u64..8, 1usize..100_000), 1..64)) {
            let mut dev = SimDevice::hdd(200_000);
            let mut last = 0.0f64;
            for (key, bytes) in ops {
                dev.read(Some(key), bytes, Access::Random, None);
                let now = dev.stats().io_seconds;
                prop_assert!(now >= last);
                last = now;
            }
        }
    }
}
