//! On-disk persistence for heap tables, and real file-backed block access.
//!
//! Two layers:
//!
//! * [`save_table`] / [`load_table`] — whole-table serialization in a
//!   compact, block-indexed binary format.
//! * [`FileTable`] — opens a saved heap file *without* loading it and
//!   serves [`FileTable::read_block`] with actual positioned reads
//!   (`seek` + `read`), i.e. the real-I/O counterpart of the simulated
//!   block-addressable device: CorgiPile's block-level shuffle can run
//!   against genuine files.
//!
//! Format `CORGIPL2` (all integers little-endian):
//!
//! ```text
//! magic "CORGIPL2"                      8 bytes
//! name_len u32, name bytes
//! table_id u32, block_bytes u64, toast_threshold u64, toast_cap f64
//! tuple_count u64, block_count u64
//! per block: first_tuple u64, tuple_count u64, data_off u64, data_len u64
//! data region: per tuple, len u32 + encoded tuple bytes
//! ```

use crate::error::StorageError;
use crate::table::{Table, TableBuilder, TableConfig};
use crate::tuple::Tuple;
use crate::Result;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use parking_lot::Mutex;

const MAGIC: &[u8; 8] = b"CORGIPL2";

fn io_err(e: io::Error) -> StorageError {
    StorageError::Corrupt(format!("io error: {e}"))
}

/// Write `table` to `path` in the block-indexed heap format.
pub fn save_table(table: &Table, path: &Path) -> Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path).map_err(io_err)?);
    let cfg = table.config();
    f.write_all(MAGIC).map_err(io_err)?;
    let name = cfg.name.as_bytes();
    f.write_all(&(name.len() as u32).to_le_bytes()).map_err(io_err)?;
    f.write_all(name).map_err(io_err)?;
    f.write_all(&cfg.table_id.to_le_bytes()).map_err(io_err)?;
    f.write_all(&(cfg.block_bytes as u64).to_le_bytes()).map_err(io_err)?;
    f.write_all(&(cfg.toast_threshold as u64).to_le_bytes()).map_err(io_err)?;
    f.write_all(&cfg.toast_cap.to_le_bytes()).map_err(io_err)?;
    f.write_all(&table.num_tuples().to_le_bytes()).map_err(io_err)?;
    f.write_all(&(table.num_blocks() as u64).to_le_bytes()).map_err(io_err)?;

    // Serialize every block's tuples up front to know offsets.
    let mut regions: Vec<(u64, u64, Vec<u8>)> = Vec::with_capacity(table.num_blocks());
    for blk in 0..table.num_blocks() {
        let meta = table.block(blk)?.clone();
        let mut data = Vec::new();
        let mut tbuf = Vec::new();
        for t in table.block_tuples(blk)? {
            tbuf.clear();
            t.encode(&mut tbuf);
            data.extend_from_slice(&(tbuf.len() as u32).to_le_bytes());
            data.extend_from_slice(&tbuf);
        }
        regions.push((meta.tuples.start, meta.tuple_count() as u64, data));
    }
    let header_end = 8
        + 4
        + name.len()
        + 4
        + 8
        + 8
        + 8
        + 8
        + 8
        + regions.len() * 32;
    let mut off = header_end as u64;
    for (first, count, data) in &regions {
        f.write_all(&first.to_le_bytes()).map_err(io_err)?;
        f.write_all(&count.to_le_bytes()).map_err(io_err)?;
        f.write_all(&off.to_le_bytes()).map_err(io_err)?;
        f.write_all(&(data.len() as u64).to_le_bytes()).map_err(io_err)?;
        off += data.len() as u64;
    }
    for (_, _, data) in &regions {
        f.write_all(data).map_err(io_err)?;
    }
    f.flush().map_err(io_err)?;
    Ok(())
}

/// Metadata of one block inside a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileBlockMeta {
    /// First tuple id in the block.
    pub first_tuple: u64,
    /// Tuples in the block.
    pub tuple_count: u64,
    /// Byte offset of the block's data region.
    pub data_off: u64,
    /// Byte length of the block's data region.
    pub data_len: u64,
}

struct FileHeader {
    config: TableConfig,
    tuple_count: u64,
    blocks: Vec<FileBlockMeta>,
}

fn read_header<R: Read>(f: &mut R) -> Result<FileHeader> {
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(StorageError::Corrupt("bad magic (not a corgipile heap file)".into()));
    }
    let name_len = read_u32(f)? as usize;
    if name_len > 1 << 16 {
        return Err(StorageError::Corrupt(format!("implausible name length {name_len}")));
    }
    let mut name = vec![0u8; name_len];
    f.read_exact(&mut name).map_err(io_err)?;
    let name = String::from_utf8(name)
        .map_err(|_| StorageError::Corrupt("table name is not UTF-8".into()))?;
    let table_id = read_u32(f)?;
    let block_bytes = read_u64(f)? as usize;
    let toast_threshold = read_u64(f)? as usize;
    let toast_cap = read_f64(f)?;
    let tuple_count = read_u64(f)?;
    let block_count = read_u64(f)? as usize;
    if block_count > 1 << 24 {
        return Err(StorageError::Corrupt(format!("implausible block count {block_count}")));
    }
    let mut blocks = Vec::with_capacity(block_count);
    for _ in 0..block_count {
        blocks.push(FileBlockMeta {
            first_tuple: read_u64(f)?,
            tuple_count: read_u64(f)?,
            data_off: read_u64(f)?,
            data_len: read_u64(f)?,
        });
    }
    let mut config = TableConfig::new(name, table_id).with_block_bytes(block_bytes.max(1));
    config.toast_threshold = toast_threshold;
    config.toast_cap = toast_cap;
    Ok(FileHeader { config, tuple_count, blocks })
}

fn decode_block(data: &[u8], expected: u64) -> Result<Vec<Tuple>> {
    let mut tuples = Vec::with_capacity(expected as usize);
    let mut pos = 0usize;
    while pos < data.len() {
        if pos + 4 > data.len() {
            return Err(StorageError::Corrupt("truncated tuple length".into()));
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if pos + len > data.len() {
            return Err(StorageError::Corrupt("truncated tuple body".into()));
        }
        let (t, used) = Tuple::decode(&data[pos..pos + len])?;
        if used != len {
            return Err(StorageError::Corrupt("tuple length mismatch".into()));
        }
        tuples.push(t);
        pos += len;
    }
    if tuples.len() as u64 != expected {
        return Err(StorageError::Corrupt(format!(
            "block holds {} tuples, index says {expected}",
            tuples.len()
        )));
    }
    Ok(tuples)
}

/// Read a whole table previously written by [`save_table`].
pub fn load_table(path: &Path) -> Result<Table> {
    let mut f = io::BufReader::new(std::fs::File::open(path).map_err(io_err)?);
    let header = read_header(&mut f)?;
    let mut builder = TableBuilder::new(header.config)?;
    let mut seen = 0u64;
    for meta in &header.blocks {
        let mut data = vec![0u8; meta.data_len as usize];
        f.read_exact(&mut data).map_err(io_err)?;
        for t in decode_block(&data, meta.tuple_count)? {
            builder.append(&t)?;
            seen += 1;
        }
    }
    if seen != header.tuple_count {
        return Err(StorageError::Corrupt(format!(
            "file declares {} tuples, found {seen}",
            header.tuple_count
        )));
    }
    Ok(builder.finish())
}

/// A heap file opened for block-granular access with real positioned I/O.
///
/// This is the storage path a production deployment would take: the table
/// stays on disk and CorgiPile's block-level shuffle issues one positioned
/// read per sampled block. Thread-safe (reads serialize on an internal
/// lock, like a single-file buffer manager).
pub struct FileTable {
    file: Mutex<std::fs::File>,
    config: TableConfig,
    tuple_count: u64,
    blocks: Vec<FileBlockMeta>,
}

impl FileTable {
    /// Open a heap file written by [`save_table`] without loading its data.
    pub fn open(path: &Path) -> Result<FileTable> {
        let mut f = std::fs::File::open(path).map_err(io_err)?;
        let header = {
            let mut r = io::BufReader::new(&mut f);
            read_header(&mut r)?
        };
        Ok(FileTable {
            file: Mutex::new(f),
            config: header.config,
            tuple_count: header.tuple_count,
            blocks: header.blocks,
        })
    }

    /// Table configuration from the file header.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// Number of tuples.
    pub fn num_tuples(&self) -> u64 {
        self.tuple_count
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Block index entries.
    pub fn blocks(&self) -> &[FileBlockMeta] {
        &self.blocks
    }

    /// Read one block with a real positioned read.
    pub fn read_block(&self, id: usize) -> Result<Vec<Tuple>> {
        let meta = *self
            .blocks
            .get(id)
            .ok_or(StorageError::BlockOutOfRange { block: id, blocks: self.blocks.len() })?;
        let mut data = vec![0u8; meta.data_len as usize];
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(meta.data_off)).map_err(io_err)?;
            f.read_exact(&mut data).map_err(io_err)?;
        }
        decode_block(&data, meta.tuple_count)
    }

    /// Load the whole file into an in-memory [`Table`].
    pub fn to_table(&self) -> Result<Table> {
        let mut builder = TableBuilder::new(self.config.clone())?;
        for id in 0..self.num_blocks() {
            for t in self.read_block(id)? {
                builder.append(&t)?;
            }
        }
        Ok(builder.finish())
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("corgi_{}_{name}", std::process::id()))
    }

    fn sample_table(n: u64) -> Table {
        let cfg = TableConfig::new("persisted", 7).with_block_bytes(2 * crate::page::PAGE_SIZE);
        Table::from_tuples(
            cfg,
            (0..n).map(|id| {
                if id % 3 == 0 {
                    Tuple::sparse(id, 1000, vec![1, id as u32 % 900 + 2], vec![0.5, -1.5], -1.0)
                } else {
                    Tuple::dense(id, vec![id as f32, 2.0, 3.0], 1.0)
                }
            }),
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let table = sample_table(500);
        let path = tmp("roundtrip.tbl");
        save_table(&table, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back.num_tuples(), 500);
        assert_eq!(back.config().name, "persisted");
        assert_eq!(back.config().table_id, 7);
        assert_eq!(back.config().block_bytes, table.config().block_bytes);
        assert_eq!(back.all_tuples(), table.all_tuples());
        assert_eq!(back.num_blocks(), table.num_blocks());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_table_roundtrips() {
        let table =
            Table::from_tuples(TableConfig::new("empty", 1), std::iter::empty()).unwrap();
        let path = tmp("empty.tbl");
        save_table(&table, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back.num_tuples(), 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        let path = tmp("garbage.tbl");
        std::fs::write(&path, b"NOTATABLEFILE").unwrap();
        assert!(load_table(&path).is_err());

        let table = sample_table(50);
        save_table(&table, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_table(&path).is_err(), "truncated file must fail cleanly");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_table(&tmp("never_written.tbl")).is_err());
    }

    #[test]
    fn file_table_random_block_reads_match_memory() {
        let table = sample_table(400);
        let path = tmp("filetable.tbl");
        save_table(&table, &path).unwrap();
        let ft = FileTable::open(&path).unwrap();
        assert_eq!(ft.num_tuples(), 400);
        assert_eq!(ft.num_blocks(), table.num_blocks());
        assert_eq!(ft.config().name, "persisted");
        // Read blocks in a scrambled order; must match the in-memory table.
        let order: Vec<usize> = (0..ft.num_blocks()).rev().collect();
        for id in order {
            assert_eq!(
                ft.read_block(id).unwrap(),
                table.block_tuples(id).unwrap(),
                "block {id}"
            );
        }
        assert!(ft.read_block(9999).is_err());
        // Full reload through the block reader.
        let back = ft.to_table().unwrap();
        assert_eq!(back.all_tuples(), table.all_tuples());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn file_table_is_shareable_across_threads() {
        let table = sample_table(300);
        let path = tmp("filetable_mt.tbl");
        save_table(&table, &path).unwrap();
        let ft = std::sync::Arc::new(FileTable::open(&path).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let ft = ft.clone();
            handles.push(std::thread::spawn(move || {
                let mut count = 0u64;
                for id in 0..ft.num_blocks() {
                    if (id as u64 + t) % 2 == 0 {
                        count += ft.read_block(id).unwrap().len() as u64;
                    }
                }
                count
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        std::fs::remove_file(path).ok();
    }
}
