//! On-disk persistence for heap tables, and real file-backed block access.
//!
//! Two layers:
//!
//! * [`save_table`] / [`load_table`] — whole-table serialization in a
//!   compact, block-indexed binary format.
//! * [`FileTable`] — opens a saved heap file *without* loading it and
//!   serves [`FileTable::read_block`] with actual positioned reads
//!   (`seek` + `read`), i.e. the real-I/O counterpart of the simulated
//!   block-addressable device: CorgiPile's block-level shuffle can run
//!   against genuine files.
//!
//! Format `CORGIPL3` (all integers little-endian):
//!
//! ```text
//! magic "CORGIPL3"                      8 bytes
//! header_crc u32                        CRC-32 of everything from name_len
//!                                       through the end of the block index
//! name_len u32, name bytes
//! table_id u32, block_bytes u64, toast_threshold u64, toast_cap f64
//! tuple_count u64, block_count u64
//! per block: first_tuple u64, tuple_count u64, data_off u64, data_len u64,
//!            crc u32                    CRC-32 of the block's data region
//! data region: per tuple, len u32 + encoded tuple bytes
//! ```
//!
//! Crash safety: [`save_table`] writes a sibling temp file, syncs it, then
//! renames over the target — a crash mid-save leaves the old file intact,
//! never a torn one. Checksums make any surviving corruption detectable:
//! the header CRC covers the index, and each block CRC is verified before
//! its bytes are decoded, so a flipped bit surfaces as
//! [`StorageError::ChecksumMismatch`] rather than silent bad data.
//!
//! The previous `CORGIPL2` format (no checksums, 32-byte index entries)
//! remains readable; [`FileBlockMeta::crc`] is `None` for such files.

use crate::crc::crc32;
use crate::error::StorageError;
use crate::fault::{sites, FaultInjector, FaultPlan, FaultStats, ReadOutcome, WriteOutcome};
use crate::retry::RetryPolicy;
use crate::table::{Table, TableBuilder, TableConfig};
use crate::tuple::Tuple;
use crate::wal::fsync_parent_dir;
use crate::Result;
use parking_lot::Mutex;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC_V3: &[u8; 8] = b"CORGIPL3";
const MAGIC_V2: &[u8; 8] = b"CORGIPL2";

fn io_err(op: &'static str, e: io::Error) -> StorageError {
    StorageError::Io {
        op,
        message: e.to_string(),
    }
}

/// Sibling path used for atomic writes (`<name>.tmp` in the same directory,
/// so the final rename never crosses a filesystem boundary).
fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|s| s.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("corgipile"));
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replace `path` with `bytes`: write a synced temp sibling,
/// then rename it into place. Used by table persistence and training
/// checkpoints; a crash at any point leaves either the old file or the new
/// one, never a torn mix.
///
/// The parent directory is fsynced after the rename — without it the
/// rename lives only in the directory's page-cache entry, and a power loss
/// can resurrect the old file (or no file) even though the rename
/// "succeeded". This is the classic fsync-the-directory bug; the guarantee
/// is pinned by `atomic_write_survives_mid_rename_crash` and documented in
/// DESIGN.md §12.
pub fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> Result<()> {
    atomic_write_bytes_faulted(path, bytes, None)
}

/// [`atomic_write_bytes`] visiting [`sites::ATOMIC_WRITE_MID_RENAME`] on
/// `inj` between the temp-file sync and the rename: an injected crash
/// there leaves the synced temp sibling on disk and the target untouched —
/// exactly what a real kill between the two syscalls leaves.
pub fn atomic_write_bytes_faulted(
    path: &Path,
    bytes: &[u8],
    inj: Option<&mut FaultInjector>,
) -> Result<()> {
    let tmp = temp_sibling(path);
    let write = (|| -> Result<()> {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create temp", e))?;
        f.write_all(bytes).map_err(|e| io_err("write temp", e))?;
        f.sync_all().map_err(|e| io_err("sync temp", e))?;
        Ok(())
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(i) = inj {
        match i.on_write(sites::ATOMIC_WRITE_MID_RENAME) {
            WriteOutcome::Ok => {}
            WriteOutcome::Fail(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
            WriteOutcome::Torn { valid_bytes } => {
                // The temp file was synced whole, but the crash models dying
                // with only a prefix of it durable.
                let f = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&tmp)
                    .map_err(|e| io_err("open temp", e))?;
                f.set_len(valid_bytes.min(bytes.len()) as u64)
                    .map_err(|e| io_err("truncate temp", e))?;
                f.sync_all().map_err(|e| io_err("sync temp", e))?;
                return Err(StorageError::Crashed {
                    site: sites::ATOMIC_WRITE_MID_RENAME.into(),
                });
            }
            WriteOutcome::Crash => {
                return Err(StorageError::Crashed {
                    site: sites::ATOMIC_WRITE_MID_RENAME.into(),
                });
            }
        }
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        io_err("rename temp", e)
    })?;
    fsync_parent_dir(path)
}

/// Serialize every block's tuple data: `(first_tuple, tuple_count, bytes)`.
fn encode_regions(table: &Table) -> Result<Vec<(u64, u64, Vec<u8>)>> {
    let mut regions = Vec::with_capacity(table.num_blocks());
    for blk in 0..table.num_blocks() {
        let meta = table.block(blk)?.clone();
        let mut data = Vec::new();
        let mut tbuf = Vec::new();
        for t in table.block_tuples(blk)? {
            tbuf.clear();
            t.encode(&mut tbuf);
            data.extend_from_slice(&(tbuf.len() as u32).to_le_bytes());
            data.extend_from_slice(&tbuf);
        }
        regions.push((meta.tuples.start, meta.tuple_count() as u64, data));
    }
    Ok(regions)
}

/// Write `table` to `path` in the checksummed `CORGIPL3` heap format.
///
/// The write is atomic: data goes to a synced temp sibling which is renamed
/// over `path`, so a crash never leaves a torn file; the parent directory
/// is fsynced afterwards so the rename itself is durable.
pub fn save_table(table: &Table, path: &Path) -> Result<()> {
    save_table_faulted(table, path, None)
}

/// [`save_table`] visiting [`sites::SAVE_TABLE_MID_RENAME`] on `inj`
/// between the temp-file sync and the rename.
pub fn save_table_faulted(
    table: &Table,
    path: &Path,
    inj: Option<&mut FaultInjector>,
) -> Result<()> {
    let cfg = table.config();
    let regions = encode_regions(table)?;
    let name = cfg.name.as_bytes();
    // 8 magic + 4 header crc + the header region itself.
    let header_end = 8 + 4 + 4 + name.len() + 4 + 8 + 8 + 8 + 8 + 8 + regions.len() * 36;

    // Build the checksummed header region in memory.
    let mut hdr = Vec::with_capacity(header_end - 12);
    hdr.extend_from_slice(&(name.len() as u32).to_le_bytes());
    hdr.extend_from_slice(name);
    hdr.extend_from_slice(&cfg.table_id.to_le_bytes());
    hdr.extend_from_slice(&(cfg.block_bytes as u64).to_le_bytes());
    hdr.extend_from_slice(&(cfg.toast_threshold as u64).to_le_bytes());
    hdr.extend_from_slice(&cfg.toast_cap.to_le_bytes());
    hdr.extend_from_slice(&table.num_tuples().to_le_bytes());
    hdr.extend_from_slice(&(table.num_blocks() as u64).to_le_bytes());
    let mut off = header_end as u64;
    for (first, count, data) in &regions {
        hdr.extend_from_slice(&first.to_le_bytes());
        hdr.extend_from_slice(&count.to_le_bytes());
        hdr.extend_from_slice(&off.to_le_bytes());
        hdr.extend_from_slice(&(data.len() as u64).to_le_bytes());
        hdr.extend_from_slice(&crc32(data).to_le_bytes());
        off += data.len() as u64;
    }

    let tmp = temp_sibling(path);
    let write = (|| -> Result<()> {
        let f = std::fs::File::create(&tmp).map_err(|e| io_err("create temp", e))?;
        let mut w = io::BufWriter::new(f);
        w.write_all(MAGIC_V3).map_err(|e| io_err("write", e))?;
        w.write_all(&crc32(&hdr).to_le_bytes())
            .map_err(|e| io_err("write", e))?;
        w.write_all(&hdr).map_err(|e| io_err("write", e))?;
        for (_, _, data) in &regions {
            w.write_all(data).map_err(|e| io_err("write", e))?;
        }
        w.flush().map_err(|e| io_err("flush", e))?;
        w.get_ref().sync_all().map_err(|e| io_err("sync", e))?;
        Ok(())
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(i) = inj {
        match i.on_write(sites::SAVE_TABLE_MID_RENAME) {
            WriteOutcome::Ok => {}
            WriteOutcome::Fail(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
            // A tear inside save_table's window behaves like a plain crash:
            // the synced temp sibling survives, the target is untouched (the
            // heap format's own CRCs reject any partial temp a weaker sync
            // discipline could leave).
            WriteOutcome::Torn { .. } | WriteOutcome::Crash => {
                return Err(StorageError::Crashed {
                    site: sites::SAVE_TABLE_MID_RENAME.into(),
                });
            }
        }
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        io_err("rename temp", e)
    })?;
    fsync_parent_dir(path)
}

/// Write `table` in the legacy `CORGIPL2` format (no checksums, non-atomic).
///
/// Retained only so compatibility tests can produce files identical to what
/// older builds wrote; new code should use [`save_table`].
#[doc(hidden)]
pub fn save_table_v2(table: &Table, path: &Path) -> Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path).map_err(|e| io_err("create", e))?);
    let cfg = table.config();
    let regions = encode_regions(table)?;
    let name = cfg.name.as_bytes();
    f.write_all(MAGIC_V2).map_err(|e| io_err("write", e))?;
    f.write_all(&(name.len() as u32).to_le_bytes())
        .map_err(|e| io_err("write", e))?;
    f.write_all(name).map_err(|e| io_err("write", e))?;
    f.write_all(&cfg.table_id.to_le_bytes())
        .map_err(|e| io_err("write", e))?;
    f.write_all(&(cfg.block_bytes as u64).to_le_bytes())
        .map_err(|e| io_err("write", e))?;
    f.write_all(&(cfg.toast_threshold as u64).to_le_bytes())
        .map_err(|e| io_err("write", e))?;
    f.write_all(&cfg.toast_cap.to_le_bytes())
        .map_err(|e| io_err("write", e))?;
    f.write_all(&table.num_tuples().to_le_bytes())
        .map_err(|e| io_err("write", e))?;
    f.write_all(&(table.num_blocks() as u64).to_le_bytes())
        .map_err(|e| io_err("write", e))?;
    let header_end = 8 + 4 + name.len() + 4 + 8 + 8 + 8 + 8 + 8 + regions.len() * 32;
    let mut off = header_end as u64;
    for (first, count, data) in &regions {
        f.write_all(&first.to_le_bytes())
            .map_err(|e| io_err("write", e))?;
        f.write_all(&count.to_le_bytes())
            .map_err(|e| io_err("write", e))?;
        f.write_all(&off.to_le_bytes())
            .map_err(|e| io_err("write", e))?;
        f.write_all(&(data.len() as u64).to_le_bytes())
            .map_err(|e| io_err("write", e))?;
        off += data.len() as u64;
    }
    for (_, _, data) in &regions {
        f.write_all(data).map_err(|e| io_err("write", e))?;
    }
    f.flush().map_err(|e| io_err("flush", e))?;
    Ok(())
}

/// Metadata of one block inside a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileBlockMeta {
    /// First tuple id in the block.
    pub first_tuple: u64,
    /// Tuples in the block.
    pub tuple_count: u64,
    /// Byte offset of the block's data region.
    pub data_off: u64,
    /// Byte length of the block's data region.
    pub data_len: u64,
    /// CRC-32 of the data region (`None` for legacy `CORGIPL2` files).
    pub crc: Option<u32>,
}

struct FileHeader {
    config: TableConfig,
    tuple_count: u64,
    blocks: Vec<FileBlockMeta>,
    version: u8,
}

/// A reader that remembers every byte it hands out, for after-the-fact
/// checksum verification of a streamed header.
struct TeeReader<'a, R: Read> {
    inner: &'a mut R,
    seen: Vec<u8>,
}

impl<R: Read> Read for TeeReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.seen.extend_from_slice(&buf[..n]);
        Ok(n)
    }
}

fn read_header<R: Read>(f: &mut R) -> Result<FileHeader> {
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)
        .map_err(|e| io_err("read magic", e))?;
    let version: u8 = if &magic == MAGIC_V3 {
        3
    } else if &magic == MAGIC_V2 {
        2
    } else {
        return Err(StorageError::Corrupt(
            "bad magic (not a corgipile heap file)".into(),
        ));
    };
    let expected_crc = if version == 3 {
        Some(read_u32(f)?)
    } else {
        None
    };
    let mut tee = TeeReader {
        inner: f,
        seen: Vec::new(),
    };
    let f = &mut tee;
    let name_len = read_u32(f)? as usize;
    if name_len > 1 << 16 {
        return Err(StorageError::Corrupt(format!(
            "implausible name length {name_len}"
        )));
    }
    let mut name = vec![0u8; name_len];
    f.read_exact(&mut name)
        .map_err(|e| io_err("read header", e))?;
    let name = String::from_utf8(name)
        .map_err(|_| StorageError::Corrupt("table name is not UTF-8".into()))?;
    let table_id = read_u32(f)?;
    let block_bytes = read_u64(f)? as usize;
    let toast_threshold = read_u64(f)? as usize;
    let toast_cap = read_f64(f)?;
    let tuple_count = read_u64(f)?;
    let block_count = read_u64(f)? as usize;
    if block_count > 1 << 24 {
        return Err(StorageError::Corrupt(format!(
            "implausible block count {block_count}"
        )));
    }
    let mut blocks = Vec::with_capacity(block_count);
    for _ in 0..block_count {
        blocks.push(FileBlockMeta {
            first_tuple: read_u64(f)?,
            tuple_count: read_u64(f)?,
            data_off: read_u64(f)?,
            data_len: read_u64(f)?,
            crc: if version == 3 {
                Some(read_u32(f)?)
            } else {
                None
            },
        });
    }
    if let Some(expected) = expected_crc {
        let actual = crc32(&tee.seen);
        if actual != expected {
            return Err(StorageError::ChecksumMismatch {
                block: None,
                expected,
                actual,
            });
        }
    }
    let mut config = TableConfig::new(name, table_id).with_block_bytes(block_bytes.max(1));
    config.toast_threshold = toast_threshold;
    config.toast_cap = toast_cap;
    Ok(FileHeader {
        config,
        tuple_count,
        blocks,
        version,
    })
}

/// Verify a block's data region against its stored checksum (v3 files).
fn verify_block_crc(block: usize, meta: &FileBlockMeta, data: &[u8]) -> Result<()> {
    if let Some(expected) = meta.crc {
        let actual = crc32(data);
        if actual != expected {
            return Err(StorageError::ChecksumMismatch {
                block: Some(block),
                expected,
                actual,
            });
        }
    }
    Ok(())
}

fn decode_block(data: &[u8], expected: u64) -> Result<Vec<Tuple>> {
    let mut tuples = Vec::with_capacity(expected as usize);
    let mut pos = 0usize;
    while pos < data.len() {
        if pos + 4 > data.len() {
            return Err(StorageError::Corrupt("truncated tuple length".into()));
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if pos + len > data.len() {
            return Err(StorageError::Corrupt("truncated tuple body".into()));
        }
        let (t, used) = Tuple::decode(&data[pos..pos + len])?;
        if used != len {
            return Err(StorageError::Corrupt("tuple length mismatch".into()));
        }
        tuples.push(t);
        pos += len;
    }
    if tuples.len() as u64 != expected {
        return Err(StorageError::Corrupt(format!(
            "block holds {} tuples, index says {expected}",
            tuples.len()
        )));
    }
    Ok(tuples)
}

/// Read a whole table previously written by [`save_table`] (either format).
pub fn load_table(path: &Path) -> Result<Table> {
    let mut f = io::BufReader::new(std::fs::File::open(path).map_err(|e| io_err("open", e))?);
    let header = read_header(&mut f)?;
    let mut builder = TableBuilder::new(header.config)?;
    let mut seen = 0u64;
    for (blk, meta) in header.blocks.iter().enumerate() {
        let mut data = vec![0u8; meta.data_len as usize];
        f.read_exact(&mut data)
            .map_err(|e| io_err("read block", e))?;
        verify_block_crc(blk, meta, &data)?;
        for t in decode_block(&data, meta.tuple_count)? {
            builder.append(&t)?;
            seen += 1;
        }
    }
    if seen != header.tuple_count {
        return Err(StorageError::Corrupt(format!(
            "file declares {} tuples, found {seen}",
            header.tuple_count
        )));
    }
    Ok(builder.finish())
}

/// A heap file opened for block-granular access with real positioned I/O.
///
/// This is the storage path a production deployment would take: the table
/// stays on disk and CorgiPile's block-level shuffle issues one positioned
/// read per sampled block, verifying the block checksum before decoding.
/// Thread-safe (reads serialize on an internal lock, like a single-file
/// buffer manager). An optional [`FaultPlan`] injects deterministic faults
/// into the read path for recovery testing.
pub struct FileTable {
    file: Mutex<std::fs::File>,
    config: TableConfig,
    tuple_count: u64,
    blocks: Vec<FileBlockMeta>,
    version: u8,
    injector: Mutex<Option<FaultInjector>>,
}

impl FileTable {
    /// Open a heap file written by [`save_table`] without loading its data.
    pub fn open(path: &Path) -> Result<FileTable> {
        let mut f = std::fs::File::open(path).map_err(|e| io_err("open", e))?;
        let header = {
            let mut r = io::BufReader::new(&mut f);
            read_header(&mut r)?
        };
        Ok(FileTable {
            file: Mutex::new(f),
            config: header.config,
            tuple_count: header.tuple_count,
            blocks: header.blocks,
            version: header.version,
            injector: Mutex::new(None),
        })
    }

    /// Table configuration from the file header.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// Number of tuples.
    pub fn num_tuples(&self) -> u64 {
        self.tuple_count
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Block index entries.
    pub fn blocks(&self) -> &[FileBlockMeta] {
        &self.blocks
    }

    /// Heap-format version of the underlying file (2 or 3).
    pub fn format_version(&self) -> u8 {
        self.version
    }

    /// Install a deterministic fault plan on the read path.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.injector.lock() = Some(FaultInjector::new(plan));
    }

    /// Remove and return the fault injector.
    pub fn clear_fault_injector(&self) -> Option<FaultInjector> {
        self.injector.lock().take()
    }

    /// Counters of injected faults, if an injector is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.injector.lock().as_ref().map(|i| i.stats().clone())
    }

    /// Read one block with a real positioned read, verifying its checksum.
    pub fn read_block(&self, id: usize) -> Result<Vec<Tuple>> {
        let meta = *self.blocks.get(id).ok_or(StorageError::BlockOutOfRange {
            block: id,
            blocks: self.blocks.len(),
        })?;
        if let Some(inj) = self.injector.lock().as_mut() {
            match inj.on_read(self.config.table_id, id) {
                ReadOutcome::Ok => {}
                // Real-I/O path: the spike is recorded in the injector's
                // stats; there is no simulated clock to charge.
                ReadOutcome::Delay(_) => {}
                ReadOutcome::Fail(e) => return Err(e),
            }
        }
        let mut data = vec![0u8; meta.data_len as usize];
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(meta.data_off))
                .map_err(|e| io_err("seek", e))?;
            f.read_exact(&mut data)
                .map_err(|e| io_err("read block", e))?;
        }
        verify_block_crc(id, &meta, &data)?;
        decode_block(&data, meta.tuple_count)
    }

    /// [`FileTable::read_block`] with bounded retries: retryable failures
    /// (transient faults, checksum mismatches, I/O errors) are re-attempted
    /// up to `policy.max_retries` times before a
    /// [`StorageError::ReadFailed`] reports the exhausted attempt count.
    pub fn read_block_retry(&self, id: usize, policy: &RetryPolicy) -> Result<Vec<Tuple>> {
        let mut attempt = 0u32;
        loop {
            match self.read_block(id) {
                Ok(tuples) => return Ok(tuples),
                Err(e) if e.is_retryable() && attempt < policy.max_retries => attempt += 1,
                Err(e) if e.is_retryable() => {
                    return Err(StorageError::ReadFailed {
                        block: id,
                        attempts: attempt + 1,
                        message: e.to_string(),
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Load the whole file into an in-memory [`Table`].
    pub fn to_table(&self) -> Result<Table> {
        let mut builder = TableBuilder::new(self.config.clone())?;
        for id in 0..self.num_blocks() {
            for t in self.read_block(id)? {
                builder.append(&t)?;
            }
        }
        Ok(builder.finish())
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(|e| io_err("read header", e))?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(|e| io_err("read header", e))?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(|e| io_err("read header", e))?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use proptest::prelude::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("corgi_{}_{name}", std::process::id()))
    }

    fn sample_table(n: u64) -> Table {
        let cfg = TableConfig::new("persisted", 7).with_block_bytes(2 * crate::page::PAGE_SIZE);
        Table::from_tuples(
            cfg,
            (0..n).map(|id| {
                if id % 3 == 0 {
                    Tuple::sparse(
                        id,
                        1000,
                        vec![1, id as u32 % 900 + 2],
                        vec![0.5, -1.5],
                        -1.0,
                    )
                } else {
                    Tuple::dense(id, vec![id as f32, 2.0, 3.0], 1.0)
                }
            }),
        )
        .unwrap()
    }

    /// Byte offset where the data region starts in a v3 file.
    fn v3_data_start(path: &Path) -> u64 {
        let ft = FileTable::open(path).unwrap();
        ft.blocks().iter().map(|b| b.data_off).min().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let table = sample_table(500);
        let path = tmp("roundtrip.tbl");
        save_table(&table, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back.num_tuples(), 500);
        assert_eq!(back.config().name, "persisted");
        assert_eq!(back.config().table_id, 7);
        assert_eq!(back.config().block_bytes, table.config().block_bytes);
        assert_eq!(back.all_tuples(), table.all_tuples());
        assert_eq!(back.num_blocks(), table.num_blocks());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_table_roundtrips() {
        let table = Table::from_tuples(TableConfig::new("empty", 1), std::iter::empty()).unwrap();
        let path = tmp("empty.tbl");
        save_table(&table, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back.num_tuples(), 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        let path = tmp("garbage.tbl");
        std::fs::write(&path, b"NOTATABLEFILE").unwrap();
        assert!(load_table(&path).is_err());

        let table = sample_table(50);
        save_table(&table, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(
            load_table(&path).is_err(),
            "truncated file must fail cleanly"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_a_structured_io_error() {
        match load_table(&tmp("never_written.tbl")) {
            Err(StorageError::Io { op, .. }) => assert_eq!(op, "open"),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let table = sample_table(100);
        let path = tmp("atomic.tbl");
        // Overwrite an existing file: the old content must never be mixed
        // with the new, and the temp sibling must be gone afterwards.
        save_table(&sample_table(20), &path).unwrap();
        save_table(&table, &path).unwrap();
        assert!(
            !temp_sibling(&path).exists(),
            "temp file must be renamed away"
        );
        let back = load_table(&path).unwrap();
        assert_eq!(back.num_tuples(), 100);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn atomic_write_survives_mid_rename_crash() {
        // Durability contract of `atomic_write_bytes`: the temp sibling is
        // synced, the rename is atomic, and the parent directory is fsynced
        // after the rename — so at *every* crash point either the complete
        // old content or the complete new content is durable, never a mix
        // and never a resurrect-the-old-file window. The mid-rename site is
        // the interesting one: the synced temp exists, the target is
        // untouched.
        let path = tmp("atomic_crash.bin");
        atomic_write_bytes(&path, b"old content").unwrap();
        let mut inj = FaultInjector::new(
            FaultPlan::new(1).with_crash_point(sites::ATOMIC_WRITE_MID_RENAME, 1),
        );
        match atomic_write_bytes_faulted(&path, b"new content", Some(&mut inj)) {
            Err(StorageError::Crashed { site }) => {
                assert_eq!(site, sites::ATOMIC_WRITE_MID_RENAME);
            }
            other => panic!("expected crash, got {other:?}"),
        }
        // Old file intact; the synced temp sibling is the crash residue.
        assert_eq!(std::fs::read(&path).unwrap(), b"old content");
        assert!(temp_sibling(&path).exists());
        // A rerun (the recovered process) completes the replace and cleans
        // the sibling up.
        atomic_write_bytes(&path, b"new content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new content");
        assert!(!temp_sibling(&path).exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn atomic_write_retryable_failure_cleans_up() {
        let path = tmp("atomic_fail.bin");
        atomic_write_bytes(&path, b"old").unwrap();
        let mut inj = FaultInjector::new(
            FaultPlan::new(1).with_write_failed(sites::ATOMIC_WRITE_MID_RENAME, 1),
        );
        match atomic_write_bytes_faulted(&path, b"new", Some(&mut inj)) {
            Err(e) => assert!(e.is_retryable()),
            other => panic!("expected retryable failure, got {other:?}"),
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
        assert!(!temp_sibling(&path).exists(), "failed write must clean up");
        // The retry succeeds (the injected fault was single-shot).
        atomic_write_bytes_faulted(&path, b"new", Some(&mut inj)).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_table_survives_mid_rename_crash() {
        let old = sample_table(40);
        let new = sample_table(120);
        let path = tmp("save_crash.tbl");
        save_table(&old, &path).unwrap();
        let mut inj =
            FaultInjector::new(FaultPlan::new(1).with_crash_point(sites::SAVE_TABLE_MID_RENAME, 1));
        assert!(matches!(
            save_table_faulted(&new, &path, Some(&mut inj)),
            Err(StorageError::Crashed { .. })
        ));
        // The old table is fully readable — never a torn mix.
        let back = load_table(&path).unwrap();
        assert_eq!(back.all_tuples(), old.all_tuples());
        // Recovery rerun replaces it cleanly.
        save_table(&new, &path).unwrap();
        assert_eq!(load_table(&path).unwrap().num_tuples(), 120);
        assert!(!temp_sibling(&path).exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corgipl2_files_still_load() {
        let table = sample_table(200);
        let path = tmp("legacy_v2.tbl");
        save_table_v2(&table, &path).unwrap();
        // Whole-table load.
        let back = load_table(&path).unwrap();
        assert_eq!(back.all_tuples(), table.all_tuples());
        // Block-granular access, with no checksums available.
        let ft = FileTable::open(&path).unwrap();
        assert_eq!(ft.format_version(), 2);
        assert!(ft.blocks().iter().all(|b| b.crc.is_none()));
        for id in 0..ft.num_blocks() {
            assert_eq!(ft.read_block(id).unwrap(), table.block_tuples(id).unwrap());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v3_files_carry_block_checksums() {
        let table = sample_table(200);
        let path = tmp("v3_crc.tbl");
        save_table(&table, &path).unwrap();
        let ft = FileTable::open(&path).unwrap();
        assert_eq!(ft.format_version(), 3);
        assert!(ft.blocks().iter().all(|b| b.crc.is_some()));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_block_is_rejected_with_checksum_mismatch() {
        let table = sample_table(300);
        let path = tmp("corrupt_block.tbl");
        save_table(&table, &path).unwrap();
        let data_start = v3_data_start(&path) as usize;
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = data_start + (bytes.len() - data_start) / 2;
        bytes[victim] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let ft = FileTable::open(&path).unwrap();
        let bad_block = ft
            .blocks()
            .iter()
            .position(|b| {
                (b.data_off as usize..(b.data_off + b.data_len) as usize).contains(&victim)
            })
            .expect("victim byte lies in some block");
        match ft.read_block(bad_block) {
            Err(StorageError::ChecksumMismatch {
                block,
                expected,
                actual,
            }) => {
                assert_eq!(block, Some(bad_block));
                assert_ne!(expected, actual);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        // Unaffected blocks still read fine.
        for id in (0..ft.num_blocks()).filter(|&id| id != bad_block) {
            assert!(ft.read_block(id).is_ok(), "clean block {id} must read");
        }
        // Whole-table load refuses the file too.
        assert!(matches!(
            load_table(&path),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let table = sample_table(100);
        let path = tmp("corrupt_header.tbl");
        save_table(&table, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the block index (after magic + crc + name).
        bytes[40] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            load_table(&path).is_err(),
            "header corruption must be detected"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn fault_plan_on_file_table_injects_and_recovers() {
        let table = sample_table(1500);
        assert!(
            table.num_blocks() >= 2,
            "test needs a second block to fault"
        );
        let path = tmp("ft_faults.tbl");
        save_table(&table, &path).unwrap();
        let ft = FileTable::open(&path).unwrap();
        ft.set_fault_plan(
            FaultPlan::new(3)
                .with_transient(7, 0, 2)
                .with_permanent(7, 1),
        );

        // Transient: fails twice, then read_block_retry recovers.
        assert!(ft.read_block(0).is_err());
        let got = ft.read_block_retry(0, &RetryPolicy::default()).unwrap();
        assert_eq!(got, table.block_tuples(0).unwrap());

        // Permanent: exhausts retries with a typed error.
        match ft.read_block_retry(1, &RetryPolicy::with_max_retries(2)) {
            Err(StorageError::ReadFailed {
                block, attempts, ..
            }) => {
                assert_eq!(block, 1);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected exhausted retries, got {other:?}"),
        }
        assert!(ft.fault_stats().unwrap().total_failures() >= 4);
        assert!(ft.clear_fault_injector().is_some());
        assert!(ft.read_block(1).is_ok(), "fault cleared");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn file_table_random_block_reads_match_memory() {
        let table = sample_table(400);
        let path = tmp("filetable.tbl");
        save_table(&table, &path).unwrap();
        let ft = FileTable::open(&path).unwrap();
        assert_eq!(ft.num_tuples(), 400);
        assert_eq!(ft.num_blocks(), table.num_blocks());
        assert_eq!(ft.config().name, "persisted");
        // Read blocks in a scrambled order; must match the in-memory table.
        let order: Vec<usize> = (0..ft.num_blocks()).rev().collect();
        for id in order {
            assert_eq!(
                ft.read_block(id).unwrap(),
                table.block_tuples(id).unwrap(),
                "block {id}"
            );
        }
        assert!(ft.read_block(9999).is_err());
        // Full reload through the block reader.
        let back = ft.to_table().unwrap();
        assert_eq!(back.all_tuples(), table.all_tuples());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn file_table_is_shareable_across_threads() {
        let table = sample_table(300);
        let path = tmp("filetable_mt.tbl");
        save_table(&table, &path).unwrap();
        let ft = std::sync::Arc::new(FileTable::open(&path).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let ft = ft.clone();
            handles.push(std::thread::spawn(move || {
                let mut count = 0u64;
                for id in 0..ft.num_blocks() {
                    if (id as u64 + t).is_multiple_of(2) {
                        count += ft.read_block(id).unwrap().len() as u64;
                    }
                }
                count
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0);
        std::fs::remove_file(path).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Satellite requirement: *any* single-byte corruption of a saved
        /// `CORGIPL3` file is detected — never a panic, never silent bad
        /// data. Corruption in the data region is specifically surfaced as
        /// `ChecksumMismatch` by the block read.
        #[test]
        fn prop_single_byte_corruption_always_detected(
            frac in 0.0f64..1.0,
            bit in 0u32..8,
            case in 0u32..1_000_000,
        ) {
            let table = sample_table(80);
            let path = tmp(&format!("prop_corrupt_{case}.tbl"));
            save_table(&table, &path).unwrap();
            let data_start = v3_data_start(&path) as usize;
            let mut bytes = std::fs::read(&path).unwrap();
            let victim = ((frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
            bytes[victim] ^= 1 << bit;
            std::fs::write(&path, &bytes).unwrap();

            // The whole-file load must reject the corruption, whatever got
            // hit (magic, header, index, or data).
            prop_assert!(load_table(&path).is_err());

            if victim >= data_start {
                // Header intact ⇒ the file opens, and the damaged block's
                // read reports a checksum mismatch.
                let ft = FileTable::open(&path).unwrap();
                let bad = ft.blocks().iter().position(|b| {
                    (b.data_off as usize..(b.data_off + b.data_len) as usize).contains(&victim)
                });
                if let Some(bad) = bad {
                    prop_assert!(matches!(
                        ft.read_block(bad),
                        Err(StorageError::ChecksumMismatch { .. })
                    ));
                }
            }
            std::fs::remove_file(path).ok();
        }
    }
}
