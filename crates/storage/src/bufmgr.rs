//! The buffer pool: PostgreSQL's `shared_buffers`, block-granular.
//!
//! The paper's integration "directly interacts with the buffer manager"
//! (§1, §6) and its experiments tune `shared_buffers` (§7.1.5). This pool
//! caches decoded blocks above the device tier: a hit returns the cached
//! block with no device charge (shared-memory access), a miss reads
//! through the [`SimDevice`] (which itself models the OS page cache below)
//! and admits the block with LRU eviction.

use crate::block::BlockId;
use crate::table::Table;
use crate::tuple::Tuple;
use crate::{Result, SimDevice};
use corgipile_telemetry::{Counter, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;

/// Counters for buffer-pool behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Block requests served from the pool.
    pub hits: u64,
    /// Block requests that went to storage.
    pub misses: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
}

impl BufferPoolStats {
    /// Hit ratio in [0, 1]; 0 when no requests were made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    tuples: Arc<Vec<Tuple>>,
    bytes: usize,
    stamp: u64,
}

/// Pre-resolved telemetry instruments mirroring [`BufferPoolStats`].
#[derive(Debug, Clone, Default)]
struct PoolMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

/// A block-granular LRU buffer pool keyed by `(table_id, block_id)`.
pub struct BufferPool {
    capacity_bytes: usize,
    used_bytes: usize,
    frames: HashMap<(u32, BlockId), Frame>,
    stamp: u64,
    stats: BufferPoolStats,
    metrics: PoolMetrics,
}

impl BufferPool {
    /// A pool holding up to `capacity_bytes` of decoded blocks.
    pub fn new(capacity_bytes: usize) -> Self {
        BufferPool {
            capacity_bytes,
            used_bytes: 0,
            frames: HashMap::new(),
            stamp: 0,
            stats: BufferPoolStats::default(),
            metrics: PoolMetrics::default(),
        }
    }

    /// Mirror pool counters into `telemetry` (`storage.pool.*`) from now on.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = PoolMetrics {
            hits: telemetry.counter("storage.pool.hits"),
            misses: telemetry.counter("storage.pool.misses"),
            evictions: telemetry.counter("storage.pool.evictions"),
        };
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently pinned by cached blocks.
    pub fn used(&self) -> usize {
        self.used_bytes
    }

    /// Counters.
    pub fn stats(&self) -> BufferPoolStats {
        self.stats
    }

    /// Whether a block is resident.
    pub fn contains(&self, table_id: u32, block: BlockId) -> bool {
        self.frames.contains_key(&(table_id, block))
    }

    /// Probe the pool for a block, recording a hit or miss. A hit returns
    /// the shared tuple handle and touches its LRU stamp; a miss returns
    /// `None` — the caller reads the block from storage and offers it back
    /// via [`BufferPool::admit_block`]. Splitting the probe from the admit
    /// lets shared-pool callers release the pool lock during the device
    /// read.
    pub fn lookup(&mut self, table_id: u32, block: BlockId) -> Option<Arc<Vec<Tuple>>> {
        self.stamp += 1;
        if let Some(frame) = self.frames.get_mut(&(table_id, block)) {
            frame.stamp = self.stamp;
            self.stats.hits += 1;
            self.metrics.hits.inc();
            Some(frame.tuples.clone())
        } else {
            self.stats.misses += 1;
            self.metrics.misses.inc();
            None
        }
    }

    /// Offer a block read from storage for caching (LRU eviction applies;
    /// oversized blocks are served uncached). If another caller admitted
    /// the same block while this one was reading, the duplicate is a no-op.
    pub fn admit_block(
        &mut self,
        table_id: u32,
        block: BlockId,
        tuples: Arc<Vec<Tuple>>,
        bytes: usize,
    ) {
        self.admit((table_id, block), tuples, bytes);
    }

    /// Fetch a block through the pool: hit → shared handle at zero device
    /// cost; miss → random block read through `dev`, then admit.
    pub fn read_block(
        &mut self,
        table: &Table,
        block: BlockId,
        dev: &mut SimDevice,
    ) -> Result<Arc<Vec<Tuple>>> {
        let table_id = table.config().table_id;
        if let Some(tuples) = self.lookup(table_id, block) {
            return Ok(tuples);
        }
        let tuples = Arc::new(table.read_block(block, dev)?);
        let bytes = table.block(block)?.bytes;
        self.admit_block(table_id, block, tuples.clone(), bytes);
        Ok(tuples)
    }

    /// [`BufferPool::read_block`] with bounded retries on the storage read
    /// (see [`Table::read_block_retry`]). Pool hits never fail.
    pub fn read_block_retry(
        &mut self,
        table: &Table,
        block: BlockId,
        dev: &mut SimDevice,
        policy: &crate::retry::RetryPolicy,
    ) -> Result<Arc<Vec<Tuple>>> {
        let table_id = table.config().table_id;
        if let Some(tuples) = self.lookup(table_id, block) {
            return Ok(tuples);
        }
        let tuples = Arc::new(table.read_block_retry(block, dev, policy)?);
        let bytes = table.block(block)?.bytes;
        self.admit_block(table_id, block, tuples.clone(), bytes);
        Ok(tuples)
    }

    /// Drop all cached blocks (counters survive).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.used_bytes = 0;
    }

    fn admit(&mut self, key: (u32, BlockId), tuples: Arc<Vec<Tuple>>, bytes: usize) {
        if bytes > self.capacity_bytes {
            return; // oversized block: serve uncached
        }
        if self.frames.contains_key(&key) {
            return; // concurrent duplicate admit: keep the resident frame
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let victim = self
                .frames
                .iter()
                .min_by_key(|(_, f)| f.stamp)
                .map(|(&k, f)| (k, f.bytes));
            match victim {
                Some((k, b)) => {
                    self.frames.remove(&k);
                    self.used_bytes -= b;
                    self.stats.evictions += 1;
                    self.metrics.evictions.inc();
                }
                None => return,
            }
        }
        self.stamp += 1;
        self.frames.insert(
            key,
            Frame {
                tuples,
                bytes,
                stamp: self.stamp,
            },
        );
        self.used_bytes += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableConfig;
    use crate::tuple::Tuple;

    fn table(id: u32, n: u64) -> Table {
        let cfg = TableConfig::new(format!("t{id}"), id).with_block_bytes(8192);
        Table::from_tuples(cfg, (0..n).map(|i| Tuple::dense(i, vec![i as f32; 8], 1.0))).unwrap()
    }

    #[test]
    fn hit_skips_the_device() {
        let t = table(1, 400);
        let mut pool = BufferPool::new(1 << 20);
        let mut dev = SimDevice::hdd(0);
        let a = pool.read_block(&t, 0, &mut dev).unwrap();
        let io_after_miss = dev.stats().io_seconds;
        let b = pool.read_block(&t, 0, &mut dev).unwrap();
        assert_eq!(dev.stats().io_seconds, io_after_miss, "hit must be free");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            pool.stats(),
            BufferPoolStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        assert!((pool.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let t = table(1, 400); // several 8KB blocks
        let mut pool = BufferPool::new(2 * 8192 + 100);
        let mut dev = SimDevice::hdd(0);
        pool.read_block(&t, 0, &mut dev).unwrap();
        pool.read_block(&t, 1, &mut dev).unwrap();
        pool.read_block(&t, 0, &mut dev).unwrap(); // touch 0
        pool.read_block(&t, 2, &mut dev).unwrap(); // evicts 1
        assert!(pool.contains(1, 0));
        assert!(!pool.contains(1, 1));
        assert!(pool.contains(1, 2));
        assert_eq!(pool.stats().evictions, 1);
        assert!(pool.used() <= pool.capacity());
    }

    #[test]
    fn tables_are_isolated_by_id() {
        let t1 = table(1, 100);
        let t2 = table(2, 100);
        let mut pool = BufferPool::new(1 << 20);
        let mut dev = SimDevice::hdd(0);
        pool.read_block(&t1, 0, &mut dev).unwrap();
        assert!(pool.contains(1, 0));
        assert!(!pool.contains(2, 0));
        pool.read_block(&t2, 0, &mut dev).unwrap();
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn oversized_block_bypasses_pool() {
        let t = table(1, 100);
        let mut pool = BufferPool::new(10); // smaller than any block
        let mut dev = SimDevice::hdd(0);
        pool.read_block(&t, 0, &mut dev).unwrap();
        assert!(!pool.contains(1, 0));
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn telemetry_mirrors_pool_counters() {
        let t = table(1, 400);
        let tel = Telemetry::enabled();
        let mut pool = BufferPool::new(2 * 8192 + 100);
        pool.set_telemetry(&tel);
        let mut dev = SimDevice::hdd(0);
        pool.read_block(&t, 0, &mut dev).unwrap();
        pool.read_block(&t, 0, &mut dev).unwrap();
        pool.read_block(&t, 1, &mut dev).unwrap();
        pool.read_block(&t, 2, &mut dev).unwrap(); // evicts
        assert_eq!(tel.counter("storage.pool.hits").get(), pool.stats().hits);
        assert_eq!(
            tel.counter("storage.pool.misses").get(),
            pool.stats().misses
        );
        assert_eq!(
            tel.counter("storage.pool.evictions").get(),
            pool.stats().evictions
        );
        assert!(pool.stats().evictions > 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let t = table(1, 100);
        let mut pool = BufferPool::new(1 << 20);
        let mut dev = SimDevice::hdd(0);
        pool.read_block(&t, 0, &mut dev).unwrap();
        pool.clear();
        assert!(!pool.contains(1, 0));
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.used(), 0);
    }
}
