//! CRC-32 (IEEE 802.3 polynomial), table-driven and dependency-free.
//!
//! Used by the `CORGIPL3` heap format and the training-checkpoint blob to
//! detect torn writes and bit rot: every block payload and every header
//! carries a checksum that is verified before the bytes are trusted.

/// Reflected IEEE polynomial (the one used by zip, PNG, ethernet).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (IEEE, init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32/IEEE check: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn any_single_bit_flip_changes_the_crc() {
        let data: Vec<u8> = (0u16..512).map(|i| (i * 31 % 251) as u8).collect();
        let base = crc32(&data);
        for byte in [0usize, 1, 100, 511] {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
