//! Error types for the storage substrate.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A tuple could not be decoded from its binary representation.
    Corrupt(String),
    /// A page has no room for the requested tuple and the tuple is not
    /// eligible for a jumbo page.
    PageFull { needed: usize, free: usize },
    /// A block id was out of range for the table.
    BlockOutOfRange { block: usize, blocks: usize },
    /// A page id was out of range for the table.
    PageOutOfRange { page: usize, pages: usize },
    /// The table is empty where data was required.
    EmptyTable,
    /// Invalid configuration (e.g. zero block size).
    InvalidConfig(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Corrupt(msg) => write!(f, "corrupt tuple data: {msg}"),
            StorageError::PageFull { needed, free } => {
                write!(f, "page full: needed {needed} bytes, {free} free")
            }
            StorageError::BlockOutOfRange { block, blocks } => {
                write!(f, "block {block} out of range (table has {blocks} blocks)")
            }
            StorageError::PageOutOfRange { page, pages } => {
                write!(f, "page {page} out of range (table has {pages} pages)")
            }
            StorageError::EmptyTable => write!(f, "operation requires a non-empty table"),
            StorageError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::PageFull { needed: 100, free: 10 };
        assert!(e.to_string().contains("needed 100"));
        let e = StorageError::BlockOutOfRange { block: 7, blocks: 3 };
        assert!(e.to_string().contains("block 7"));
        assert!(e.to_string().contains("3 blocks"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(StorageError::EmptyTable, StorageError::EmptyTable);
        assert_ne!(
            StorageError::EmptyTable,
            StorageError::Corrupt("x".to_string())
        );
    }
}
