//! Error types for the storage substrate.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// A tuple could not be decoded from its binary representation.
    Corrupt(String),
    /// A page has no room for the requested tuple and the tuple is not
    /// eligible for a jumbo page.
    PageFull { needed: usize, free: usize },
    /// A block id was out of range for the table.
    BlockOutOfRange { block: usize, blocks: usize },
    /// A page id was out of range for the table.
    PageOutOfRange { page: usize, pages: usize },
    /// The table is empty where data was required.
    EmptyTable,
    /// Invalid configuration (e.g. zero block size).
    InvalidConfig(String),
    /// An operating-system I/O error, tagged with the operation that failed.
    Io { op: &'static str, message: String },
    /// Stored bytes failed checksum verification. `block` is `None` when the
    /// mismatch is in a file header rather than a data block.
    ChecksumMismatch {
        block: Option<usize>,
        expected: u32,
        actual: u32,
    },
    /// A block read failed after `attempts` attempts (faults, exhausted
    /// retries).
    ReadFailed {
        block: usize,
        attempts: u32,
        message: String,
    },
    /// A write at a named write site failed after `attempts` attempts
    /// (transient media faults, exhausted retries). The write-path mirror of
    /// [`StorageError::ReadFailed`].
    WriteFailed {
        site: String,
        attempts: u32,
        message: String,
    },
    /// A deterministic injected crash fired at a named write site: the
    /// simulated process died mid-write. Never retryable — the only way
    /// forward is recovery from durable state.
    Crashed { site: String },
}

impl StorageError {
    /// Whether a retry of the failed operation could plausibly succeed.
    ///
    /// Transient I/O errors, checksum mismatches (a torn transfer may read
    /// clean the second time), and fault-injected read/write failures are
    /// retryable; structural errors (out-of-range ids, bad configuration,
    /// undecodable tuples) are not, and neither is an injected crash — a
    /// dead process cannot retry anything.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            StorageError::Io { .. }
                | StorageError::ChecksumMismatch { .. }
                | StorageError::ReadFailed { .. }
                | StorageError::WriteFailed { .. }
        )
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Corrupt(msg) => write!(f, "corrupt tuple data: {msg}"),
            StorageError::PageFull { needed, free } => {
                write!(f, "page full: needed {needed} bytes, {free} free")
            }
            StorageError::BlockOutOfRange { block, blocks } => {
                write!(f, "block {block} out of range (table has {blocks} blocks)")
            }
            StorageError::PageOutOfRange { page, pages } => {
                write!(f, "page {page} out of range (table has {pages} pages)")
            }
            StorageError::EmptyTable => write!(f, "operation requires a non-empty table"),
            StorageError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            StorageError::Io { op, message } => write!(f, "io error during {op}: {message}"),
            StorageError::ChecksumMismatch {
                block,
                expected,
                actual,
            } => match block {
                Some(b) => write!(
                    f,
                    "checksum mismatch in block {b}: expected {expected:#010x}, got {actual:#010x}"
                ),
                None => write!(
                    f,
                    "header checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                ),
            },
            StorageError::ReadFailed {
                block,
                attempts,
                message,
            } => {
                write!(
                    f,
                    "read of block {block} failed after {attempts} attempt(s): {message}"
                )
            }
            StorageError::WriteFailed {
                site,
                attempts,
                message,
            } => {
                write!(
                    f,
                    "write at {site} failed after {attempts} attempt(s): {message}"
                )
            }
            StorageError::Crashed { site } => {
                write!(f, "simulated crash at write site {site}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::PageFull {
            needed: 100,
            free: 10,
        };
        assert!(e.to_string().contains("needed 100"));
        let e = StorageError::BlockOutOfRange {
            block: 7,
            blocks: 3,
        };
        assert!(e.to_string().contains("block 7"));
        assert!(e.to_string().contains("3 blocks"));
    }

    #[test]
    fn retryable_classification() {
        assert!(StorageError::Io {
            op: "read",
            message: "eio".into()
        }
        .is_retryable());
        assert!(StorageError::ChecksumMismatch {
            block: Some(1),
            expected: 1,
            actual: 2
        }
        .is_retryable());
        assert!(StorageError::ReadFailed {
            block: 0,
            attempts: 3,
            message: "x".into()
        }
        .is_retryable());
        assert!(!StorageError::EmptyTable.is_retryable());
        assert!(!StorageError::BlockOutOfRange {
            block: 1,
            blocks: 1
        }
        .is_retryable());
        assert!(!StorageError::Corrupt("bad".into()).is_retryable());
        assert!(!StorageError::InvalidConfig("bad".into()).is_retryable());
    }

    #[test]
    fn write_path_retryable_classification() {
        // WriteFailed mirrors ReadFailed: a transient media fault may clear on
        // the next attempt.
        assert!(StorageError::WriteFailed {
            site: "wal.append".into(),
            attempts: 3,
            message: "enospc".into()
        }
        .is_retryable());
        // An injected crash is terminal: the simulated process is gone.
        assert!(!StorageError::Crashed {
            site: "wal.after_append_before_fsync".into()
        }
        .is_retryable());
    }

    #[test]
    fn write_path_messages_are_informative() {
        let e = StorageError::WriteFailed {
            site: "atomic_write.mid_rename".into(),
            attempts: 4,
            message: "eio".into(),
        };
        assert!(e.to_string().contains("atomic_write.mid_rename"));
        assert!(e.to_string().contains("4 attempt"));
        assert!(e.to_string().contains("eio"));
        let e = StorageError::Crashed {
            site: "wal.after_fsync".into(),
        };
        assert!(e.to_string().contains("crash"));
        assert!(e.to_string().contains("wal.after_fsync"));
    }

    #[test]
    fn new_variant_messages_are_informative() {
        let e = StorageError::ChecksumMismatch {
            block: Some(4),
            expected: 0xAB,
            actual: 0xCD,
        };
        assert!(e.to_string().contains("block 4"));
        let e = StorageError::ChecksumMismatch {
            block: None,
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("header"));
        let e = StorageError::ReadFailed {
            block: 9,
            attempts: 5,
            message: "dead".into(),
        };
        assert!(e.to_string().contains("block 9"));
        assert!(e.to_string().contains("5 attempt"));
        let e = StorageError::Io {
            op: "rename",
            message: "denied".into(),
        };
        assert!(e.to_string().contains("rename"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(StorageError::EmptyTable, StorageError::EmptyTable);
        assert_ne!(
            StorageError::EmptyTable,
            StorageError::Corrupt("x".to_string())
        );
    }
}
