//! Append-only, CRC-framed write-ahead log (`CORGIWL1`).
//!
//! The durable model store journals every model version through this log
//! before acknowledging it, so a crash at any point loses at most the
//! record being appended — never a previously-fsynced one, and never the
//! log's integrity.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic "CORGIWL1"                      8 bytes
//! per record:
//!   payload_len u32
//!   rtype u8                            record type, caller-defined
//!   payload bytes                       payload_len bytes
//!   crc u32                             CRC-32 of payload_len ∥ rtype ∥ payload
//! ```
//!
//! Append protocol: frame the record, write it at the end of the file,
//! `fsync`, acknowledge. Recovery ([`Wal::open`]) scans the longest valid
//! prefix — a record counts only if its full frame is present *and* its CRC
//! verifies — and truncates everything after it (the torn tail a crash
//! between write and fsync can leave). Truncation-at-any-offset safety is
//! proven by a property test: for every byte offset at which the file can
//! be cut, recovery yields exactly the records whose frames lie wholly
//! inside the cut, never an error and never a phantom record.
//!
//! Crash injection: every append visits the named write sites
//! [`sites::WAL_BEFORE_APPEND`], [`sites::WAL_AFTER_APPEND_BEFORE_FSYNC`]
//! and [`sites::WAL_AFTER_FSYNC`] on an optional [`FaultInjector`]. A crash
//! before the fsync loses the record (the file is wound back, modelling
//! page-cache loss); a torn write persists only a prefix of the frame; a
//! crash after the fsync loses nothing. All three are exercised by the
//! crash-matrix harness in `corgipile-db`.

use crate::error::StorageError;
use crate::fault::{sites, FaultInjector, WriteOutcome};
use crate::retry::RetryPolicy;
use crate::Result;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

// The frame format lives in the shared codec (the table WAL uses the same
// framing); re-exported here so existing `wal::…` paths keep working.
pub use crate::codec::{
    encode_frame, scan_valid_prefix, WalRecord, WAL_FRAME_OVERHEAD, WAL_MAGIC, WAL_MAX_PAYLOAD,
};

fn io_err(op: &'static str, e: io::Error) -> StorageError {
    StorageError::Io {
        op,
        message: e.to_string(),
    }
}

/// Fsync the directory containing `path`, making a completed rename or
/// create durable. On filesystems where directories cannot be fsynced the
/// error is surfaced, not swallowed — durability claims should fail loudly.
pub fn fsync_parent_dir(path: &Path) -> Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let dir = std::fs::File::open(parent).map_err(|e| io_err("open parent dir", e))?;
    dir.sync_all().map_err(|e| io_err("fsync parent dir", e))
}

/// An open `CORGIWL1` write-ahead log.
///
/// [`Wal::open`] performs recovery (longest-valid-prefix scan + torn-tail
/// truncation) and returns the surviving records; [`Wal::append`] fsyncs
/// each record before acknowledging it.
#[derive(Debug)]
pub struct Wal {
    file: std::fs::File,
    path: PathBuf,
    /// Valid length of the log, in bytes (magic included). Bytes past this
    /// are never acknowledged.
    len: u64,
    records: u64,
    torn_tail_bytes: u64,
    fsyncs: u64,
    appended_bytes: u64,
}

impl Wal {
    /// Open (or create) the log at `path`, recovering its valid prefix.
    ///
    /// Returns the recovered records in append order. A torn tail — bytes
    /// past the last fully-valid record — is truncated away and counted in
    /// [`Wal::torn_tail_bytes`]. A file that does not start with a prefix
    /// of the magic is rejected as [`StorageError::Corrupt`].
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalRecord>)> {
        let existing = match std::fs::read(path) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err("read wal", e)),
        };
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("open wal", e))?;

        let (records, valid_len, torn) = match &existing {
            None => (Vec::new(), 0, 0),
            Some(bytes) if bytes.len() < WAL_MAGIC.len() => {
                // A crash could tear even the magic write; a strict prefix
                // of the magic is a torn header, anything else is foreign.
                if !WAL_MAGIC.starts_with(&bytes[..]) {
                    return Err(StorageError::Corrupt(
                        "bad magic (not a corgipile WAL file)".into(),
                    ));
                }
                (Vec::new(), 0, bytes.len())
            }
            Some(bytes) => {
                if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
                    return Err(StorageError::Corrupt(
                        "bad magic (not a corgipile WAL file)".into(),
                    ));
                }
                let (records, valid) = scan_valid_prefix(bytes);
                (records, valid, bytes.len() - valid)
            }
        };

        if valid_len == 0 {
            // Fresh or torn-header log: (re)write the magic from scratch.
            file.set_len(0).map_err(|e| io_err("truncate wal", e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| io_err("seek wal", e))?;
            file.write_all(WAL_MAGIC)
                .map_err(|e| io_err("write wal magic", e))?;
        } else {
            file.set_len(valid_len as u64)
                .map_err(|e| io_err("truncate wal", e))?;
            file.seek(SeekFrom::End(0))
                .map_err(|e| io_err("seek wal", e))?;
        }
        file.sync_all().map_err(|e| io_err("fsync wal", e))?;
        if existing.is_none() {
            fsync_parent_dir(path)?;
        }

        let wal = Wal {
            file,
            path: path.to_path_buf(),
            len: valid_len.max(WAL_MAGIC.len()) as u64,
            records: records.len() as u64,
            torn_tail_bytes: torn as u64,
            fsyncs: 1,
            appended_bytes: 0,
        };
        Ok((wal, records))
    }

    /// Append one record and fsync it, visiting the WAL write sites on
    /// `inj` if given.
    ///
    /// On an injected crash the on-disk file is left exactly as the dead
    /// process would have: nothing at `wal.before_append`, the unsynced
    /// frame wound back (or a torn prefix of it persisted) at
    /// `wal.after_append_before_fsync`, and the full durable record at
    /// `wal.after_fsync`. The in-memory `Wal` must be dropped after a
    /// [`StorageError::Crashed`] — recovery is a fresh [`Wal::open`].
    pub fn append(
        &mut self,
        rtype: u8,
        payload: &[u8],
        mut inj: Option<&mut FaultInjector>,
    ) -> Result<()> {
        if payload.len() > WAL_MAX_PAYLOAD {
            return Err(StorageError::InvalidConfig(format!(
                "WAL payload of {} bytes exceeds the {} cap",
                payload.len(),
                WAL_MAX_PAYLOAD
            )));
        }
        let frame = encode_frame(rtype, payload);

        if let Some(i) = inj.as_deref_mut() {
            match i.on_write(sites::WAL_BEFORE_APPEND) {
                WriteOutcome::Ok => {}
                WriteOutcome::Fail(e) => return Err(e),
                WriteOutcome::Torn { valid_bytes } => {
                    // The append itself tears: a prefix of the frame reaches
                    // the medium, then the process dies.
                    let keep = valid_bytes.min(frame.len());
                    self.file
                        .write_all(&frame[..keep])
                        .map_err(|e| io_err("write wal", e))?;
                    self.file.sync_all().map_err(|e| io_err("fsync wal", e))?;
                    return Err(StorageError::Crashed {
                        site: sites::WAL_BEFORE_APPEND.into(),
                    });
                }
                WriteOutcome::Crash => {
                    return Err(StorageError::Crashed {
                        site: sites::WAL_BEFORE_APPEND.into(),
                    });
                }
            }
        }

        self.file
            .write_all(&frame)
            .map_err(|e| io_err("write wal", e))?;

        if let Some(i) = inj.as_deref_mut() {
            match i.on_write(sites::WAL_AFTER_APPEND_BEFORE_FSYNC) {
                WriteOutcome::Ok => {}
                WriteOutcome::Fail(e) => {
                    // Transient failure before the fsync: wind the file back
                    // so a retry starts from a clean end-of-log.
                    self.rewind_to_valid()?;
                    return Err(e);
                }
                WriteOutcome::Torn { valid_bytes } => {
                    // The crash catches the frame half-flushed: only a
                    // prefix survives in the file.
                    let keep = valid_bytes.min(frame.len());
                    self.file
                        .set_len(self.len + keep as u64)
                        .map_err(|e| io_err("truncate wal", e))?;
                    self.file.sync_all().map_err(|e| io_err("fsync wal", e))?;
                    return Err(StorageError::Crashed {
                        site: sites::WAL_AFTER_APPEND_BEFORE_FSYNC.into(),
                    });
                }
                WriteOutcome::Crash => {
                    // The unsynced frame dies with the page cache.
                    self.rewind_to_valid()?;
                    return Err(StorageError::Crashed {
                        site: sites::WAL_AFTER_APPEND_BEFORE_FSYNC.into(),
                    });
                }
            }
        }

        self.file.sync_data().map_err(|e| io_err("fsync wal", e))?;
        self.fsyncs += 1;
        self.len += frame.len() as u64;
        self.records += 1;
        self.appended_bytes += frame.len() as u64;

        if let Some(i) = inj {
            match i.on_write(sites::WAL_AFTER_FSYNC) {
                WriteOutcome::Ok => {}
                WriteOutcome::Fail(e) => return Err(e),
                // The record is already durable; the crash loses nothing.
                WriteOutcome::Torn { .. } | WriteOutcome::Crash => {
                    return Err(StorageError::Crashed {
                        site: sites::WAL_AFTER_FSYNC.into(),
                    });
                }
            }
        }
        Ok(())
    }

    /// [`Wal::append`] with bounded retries, mirroring
    /// [`FileTable::read_block_retry`](crate::FileTable::read_block_retry):
    /// retryable failures are re-attempted up to `policy.max_retries` times
    /// before a [`StorageError::WriteFailed`] reports the exhausted attempt
    /// count. A [`StorageError::Crashed`] is never retried.
    pub fn append_retry(
        &mut self,
        rtype: u8,
        payload: &[u8],
        mut inj: Option<&mut FaultInjector>,
        policy: &RetryPolicy,
    ) -> Result<()> {
        let mut attempt = 0u32;
        loop {
            match self.append(rtype, payload, inj.as_deref_mut()) {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() && attempt < policy.max_retries => attempt += 1,
                Err(e) if e.is_retryable() => {
                    return Err(StorageError::WriteFailed {
                        site: sites::WAL_BEFORE_APPEND.into(),
                        attempts: attempt + 1,
                        message: e.to_string(),
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Truncate the log back to just its magic (after a compaction snapshot
    /// has made the records redundant). Fsyncs before returning.
    pub fn reset(&mut self) -> Result<()> {
        self.file
            .set_len(WAL_MAGIC.len() as u64)
            .map_err(|e| io_err("truncate wal", e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek wal", e))?;
        self.file.sync_all().map_err(|e| io_err("fsync wal", e))?;
        self.fsyncs += 1;
        self.len = WAL_MAGIC.len() as u64;
        self.records = 0;
        Ok(())
    }

    /// Wind the file back to the last acknowledged byte.
    fn rewind_to_valid(&mut self) -> Result<()> {
        self.file
            .set_len(self.len)
            .map_err(|e| io_err("truncate wal", e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek wal", e))?;
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Valid log length in bytes (magic included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Acknowledged records currently in the log.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Torn-tail bytes truncated during recovery at open.
    pub fn torn_tail_bytes(&self) -> u64 {
        self.torn_tail_bytes
    }

    /// Fsyncs issued since open (recovery's sync included).
    pub fn fsync_count(&self) -> u64 {
        self.fsyncs
    }

    /// Frame bytes appended (and acknowledged) since open.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use proptest::prelude::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("corgi_wal_{}_{name}", std::process::id()))
    }

    fn payload(i: u64) -> Vec<u8> {
        // Variable-length payloads so frame boundaries are irregular.
        let mut p = i.to_le_bytes().to_vec();
        p.extend(std::iter::repeat_n(i as u8, (i % 13) as usize));
        p
    }

    #[test]
    fn append_and_reopen_roundtrips() {
        let path = tmp("roundtrip.wal");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, recovered) = Wal::open(&path).unwrap();
            assert!(recovered.is_empty());
            for i in 0..20u64 {
                wal.append((i % 3) as u8, &payload(i), None).unwrap();
            }
            assert_eq!(wal.record_count(), 20);
            assert!(wal.fsync_count() >= 21);
        }
        let (wal, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 20);
        assert_eq!(wal.torn_tail_bytes(), 0);
        for (i, r) in recovered.iter().enumerate() {
            assert_eq!(r.rtype, (i % 3) as u8);
            assert_eq!(r.payload, payload(i as u64));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(1, b"abc", None).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.record_count(), 0);
        wal.append(2, b"def", None).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].payload, b"def");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let path = tmp("foreign.wal");
        std::fs::write(&path, b"DEFINITELY NOT A WAL").unwrap();
        assert!(matches!(Wal::open(&path), Err(StorageError::Corrupt(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_magic_recovers_to_empty_log() {
        let path = tmp("torn_magic.wal");
        std::fs::write(&path, &WAL_MAGIC[..3]).unwrap();
        let (wal, recovered) = Wal::open(&path).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(wal.torn_tail_bytes(), 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scan_stops_at_forged_length() {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&[0u8; 64]);
        let (records, valid) = scan_valid_prefix(&bytes);
        assert!(records.is_empty());
        assert_eq!(valid, WAL_MAGIC.len());
    }

    #[test]
    fn scan_stops_at_corrupt_crc() {
        let path = tmp("badcrc.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(1, b"first", None).unwrap();
        wal.append(2, b"second", None).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the second record's payload.
        let idx = bytes.len() - 3;
        bytes[idx] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (wal, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].payload, b"first");
        assert!(wal.torn_tail_bytes() > 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crash_before_append_loses_the_record_only() {
        let path = tmp("crash_pre.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(1, b"kept", None).unwrap();
        let mut inj =
            FaultInjector::new(FaultPlan::new(1).with_crash_point(sites::WAL_BEFORE_APPEND, 1));
        match wal.append(2, b"lost", Some(&mut inj)) {
            Err(StorageError::Crashed { site }) => {
                assert_eq!(site, sites::WAL_BEFORE_APPEND);
            }
            other => panic!("expected crash, got {other:?}"),
        }
        drop(wal);
        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].payload, b"kept");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crash_between_append_and_fsync_loses_the_unsynced_record() {
        let path = tmp("crash_mid.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(1, b"durable", None).unwrap();
        let mut inj = FaultInjector::new(
            FaultPlan::new(1).with_crash_point(sites::WAL_AFTER_APPEND_BEFORE_FSYNC, 1),
        );
        assert!(matches!(
            wal.append(2, b"in page cache", Some(&mut inj)),
            Err(StorageError::Crashed { .. })
        ));
        drop(wal);
        let (wal, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].payload, b"durable");
        assert_eq!(wal.torn_tail_bytes(), 0, "file was wound back cleanly");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crash_after_fsync_loses_nothing() {
        let path = tmp("crash_post.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        let mut inj =
            FaultInjector::new(FaultPlan::new(1).with_crash_point(sites::WAL_AFTER_FSYNC, 1));
        assert!(matches!(
            wal.append(1, b"durable anyway", Some(&mut inj)),
            Err(StorageError::Crashed { .. })
        ));
        drop(wal);
        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].payload, b"durable anyway");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_append_leaves_recoverable_prefix() {
        let path = tmp("torn_tail.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(1, b"whole", None).unwrap();
        let mut inj = FaultInjector::new(
            FaultPlan::new(1).with_torn_write(sites::WAL_AFTER_APPEND_BEFORE_FSYNC, 6),
        );
        assert!(matches!(
            wal.append(2, b"half flushed", Some(&mut inj)),
            Err(StorageError::Crashed { .. })
        ));
        drop(wal);
        let (wal, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].payload, b"whole");
        assert_eq!(wal.torn_tail_bytes(), 6, "the torn frame prefix is cut");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn retryable_write_faults_are_absorbed_by_append_retry() {
        let path = tmp("retry.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        let mut inj =
            FaultInjector::new(FaultPlan::new(1).with_write_failed(sites::WAL_BEFORE_APPEND, 2));
        wal.append_retry(1, b"persists", Some(&mut inj), &RetryPolicy::default())
            .unwrap();
        assert_eq!(inj.stats().write_failures, 2);
        drop(wal);
        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn exhausted_write_retries_mirror_read_retries() {
        let path = tmp("retry_exhausted.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        let mut inj =
            FaultInjector::new(FaultPlan::new(1).with_write_failed(sites::WAL_BEFORE_APPEND, 100));
        match wal.append_retry(
            1,
            b"never lands",
            Some(&mut inj),
            &RetryPolicy::with_max_retries(2),
        ) {
            Err(StorageError::WriteFailed { site, attempts, .. }) => {
                assert_eq!(site, sites::WAL_BEFORE_APPEND);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected exhausted retries, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crash_is_not_retried() {
        let path = tmp("crash_no_retry.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path).unwrap();
        let mut inj =
            FaultInjector::new(FaultPlan::new(1).with_crash_point(sites::WAL_BEFORE_APPEND, 1));
        assert!(matches!(
            wal.append_retry(1, b"x", Some(&mut inj), &RetryPolicy::default()),
            Err(StorageError::Crashed { .. })
        ));
        assert_eq!(
            inj.write_visits(sites::WAL_BEFORE_APPEND),
            1,
            "a crash must not be retried"
        );
        std::fs::remove_file(path).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite requirement: recovery of a log truncated at *any* byte
        /// offset yields exactly the records whose frames lie wholly inside
        /// the cut — never an error, never a phantom record.
        #[test]
        fn prop_truncation_at_any_offset_recovers_valid_prefix(
            n_records in 0usize..8,
            frac in 0.0f64..=1.0,
            case in 0u32..1_000_000,
        ) {
            // Build a reference image in memory.
            let mut image = WAL_MAGIC.to_vec();
            let mut boundaries = vec![image.len()];
            for i in 0..n_records {
                let frame = encode_frame((i % 5) as u8, &payload(i as u64));
                image.extend_from_slice(&frame);
                boundaries.push(image.len());
            }
            let cut = ((frac * image.len() as f64) as usize).min(image.len());
            let truncated = &image[..cut];

            // Expected: records whose frames end at or before the cut.
            let expected = boundaries.iter().filter(|&&b| b > WAL_MAGIC.len() && b <= cut).count();

            // Pure scan agrees.
            let (records, valid) = scan_valid_prefix(truncated);
            prop_assert_eq!(records.len(), expected);
            prop_assert!(valid <= cut);
            for (i, r) in records.iter().enumerate() {
                prop_assert_eq!(r.rtype, (i % 5) as u8);
                prop_assert_eq!(&r.payload, &payload(i as u64));
            }

            // Filesystem recovery agrees and never errors.
            let path = tmp(&format!("prop_trunc_{case}.wal"));
            std::fs::write(&path, truncated).unwrap();
            let (wal, recovered) = Wal::open(&path).unwrap();
            prop_assert_eq!(recovered.len(), expected);
            prop_assert_eq!(recovered, records);
            prop_assert_eq!(wal.torn_tail_bytes() as usize, cut - valid);
            // Recovery is stable: a second open finds the same records and
            // no further torn tail.
            drop(wal);
            let (wal2, again) = Wal::open(&path).unwrap();
            prop_assert_eq!(again.len(), expected);
            prop_assert_eq!(wal2.torn_tail_bytes(), 0);
            std::fs::remove_file(path).ok();
        }
    }
}
