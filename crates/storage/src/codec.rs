//! Shared binary codec for CorgiPile's durable on-disk formats.
//!
//! Three layers, each used by more than one subsystem:
//!
//! * **`CORGIWL1` frames** — the CRC-framed record encoding shared by the
//!   model-store WAL ([`crate::wal::Wal`]) and the table WAL
//!   ([`crate::append::AppendableTable`]). [`encode_frame`] and
//!   [`scan_valid_prefix`] are the single source of truth for the frame
//!   layout; the byte format is unchanged from when it lived in `wal.rs`.
//! * **Length-prefixed fields** — [`put_bytes`] and [`FieldReader`], the
//!   `u32 len ∥ bytes` record-field convention used by model-store records
//!   and table-WAL row batches.
//! * **CRC-trailed containers** — [`encode_container`] /
//!   [`decode_container`], the `magic ∥ count ∥ fields ∥ crc32` snapshot
//!   shape (`CORGIMS1` model snapshots).
//!
//! All integers are little-endian. Everything here is pure (no I/O), so
//! property tests can drive the codec over arbitrary corruptions.

use crate::crc::crc32;
use crate::error::StorageError;
use crate::Result;

/// File magic identifying a CorgiPile write-ahead log.
pub const WAL_MAGIC: &[u8; 8] = b"CORGIWL1";

/// Upper bound on a record payload (guards recovery against interpreting
/// garbage as a multi-gigabyte length and stalling on allocation).
pub const WAL_MAX_PAYLOAD: usize = 1 << 28;

/// Frame overhead per record: len (4) + rtype (1) + crc (4).
pub const WAL_FRAME_OVERHEAD: usize = 9;

/// One recovered log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Caller-defined record type tag.
    pub rtype: u8,
    /// Record payload bytes.
    pub payload: Vec<u8>,
}

/// Encode one `CORGIWL1` record frame (len ∥ rtype ∥ payload ∥ crc).
pub fn encode_frame(rtype: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(WAL_FRAME_OVERHEAD + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.push(rtype);
    frame.extend_from_slice(payload);
    let crc = crc32(&frame[..5 + payload.len()]);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Scan `bytes` (a whole WAL file image, magic included) for the longest
/// valid record prefix.
///
/// Returns the decoded records and the byte length of the valid prefix
/// (magic included). Everything past the returned length is a torn tail.
/// Pure function so the recovery property test can drive it over arbitrary
/// truncations without touching the filesystem.
pub fn scan_valid_prefix(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return (Vec::new(), 0);
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    while let Some(len_bytes) = bytes.get(pos..pos + 4) {
        let payload_len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
        if payload_len > WAL_MAX_PAYLOAD {
            break;
        }
        let frame_end = pos + 4 + 1 + payload_len + 4;
        if frame_end > bytes.len() {
            break;
        }
        let body = &bytes[pos..pos + 5 + payload_len];
        let stored_crc = u32::from_le_bytes(bytes[frame_end - 4..frame_end].try_into().unwrap());
        if crc32(body) != stored_crc {
            break;
        }
        records.push(WalRecord {
            rtype: bytes[pos + 4],
            payload: bytes[pos + 5..pos + 5 + payload_len].to_vec(),
        });
        pos = frame_end;
    }
    (records, pos)
}

/// Append a `u32 len ∥ bytes` length-prefixed field to `out`.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// Cursor over a record payload that reads the fixed-width and
/// length-prefixed fields written by [`put_bytes`] and friends.
///
/// Every accessor fails with [`StorageError::Corrupt`] (tagged with `what`)
/// rather than panicking, so torn or bit-rotted records surface as typed
/// errors all the way up.
#[derive(Debug)]
pub struct FieldReader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> FieldReader<'a> {
    /// Start reading `buf`; `what` names the record kind in error messages.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        FieldReader { buf, pos: 0, what }
    }

    fn corrupt(&self, detail: &str) -> StorageError {
        StorageError::Corrupt(format!("{}: {detail}", self.what))
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.corrupt("truncated record"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u32 len ∥ bytes` field written by [`put_bytes`].
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| self.corrupt("invalid utf-8 in string field"))
    }

    /// All bytes not yet consumed (consumes them).
    pub fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the record was consumed exactly.
    pub fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(self.corrupt("trailing bytes"));
        }
        Ok(())
    }
}

/// Encode a CRC-trailed container: `magic ∥ count u32 ∥ (len ∥ payload)* ∥
/// crc32(everything preceding)`.
///
/// This is the exact byte shape of the `CORGIMS1` model-store snapshot, now
/// shared so other subsystems can persist snapshot files the same way.
pub fn encode_container(magic: &[u8; 8], payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(magic);
    out.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    for p in payloads {
        put_bytes(&mut out, p);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode a container written by [`encode_container`], verifying magic and
/// CRC and returning the payloads. `what` names the file kind in errors.
pub fn decode_container(magic: &[u8; 8], bytes: &[u8], what: &'static str) -> Result<Vec<Vec<u8>>> {
    let corrupt = |detail: &str| StorageError::Corrupt(format!("{what}: {detail}"));
    if bytes.len() < magic.len() + 8 {
        return Err(corrupt("too short"));
    }
    if &bytes[..magic.len()] != magic {
        return Err(corrupt("bad magic"));
    }
    let crc_at = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[crc_at..].try_into().unwrap());
    if crc32(&bytes[..crc_at]) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = FieldReader::new(&bytes[magic.len()..crc_at], what);
    let count = r.u32()? as usize;
    let mut payloads = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        payloads.push(r.bytes()?.to_vec());
    }
    r.finish()?;
    Ok(payloads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips_through_scan() {
        let mut image = WAL_MAGIC.to_vec();
        for i in 0..5u8 {
            image.extend_from_slice(&encode_frame(i, &vec![i; i as usize * 3]));
        }
        let (records, valid) = scan_valid_prefix(&image);
        assert_eq!(valid, image.len());
        assert_eq!(records.len(), 5);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.rtype, i as u8);
            assert_eq!(r.payload, vec![i as u8; i * 3]);
        }
    }

    #[test]
    fn frame_layout_is_stable() {
        // Pin the exact bytes so refactors can't silently change the format.
        let frame = encode_frame(7, b"ab");
        assert_eq!(frame.len(), WAL_FRAME_OVERHEAD + 2);
        assert_eq!(&frame[..4], &2u32.to_le_bytes());
        assert_eq!(frame[4], 7);
        assert_eq!(&frame[5..7], b"ab");
        let crc = u32::from_le_bytes(frame[7..11].try_into().unwrap());
        assert_eq!(crc, crc32(&frame[..7]));
    }

    #[test]
    fn field_reader_roundtrips_mixed_fields() {
        let mut buf = Vec::new();
        buf.push(9u8);
        buf.extend_from_slice(&1234u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&(-2.5f64).to_le_bytes());
        put_bytes(&mut buf, b"field");
        put_bytes(&mut buf, "søme ütf8".as_bytes());

        let mut r = FieldReader::new(&buf, "test record");
        assert_eq!(r.u8().unwrap(), 9);
        assert_eq!(r.u32().unwrap(), 1234);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), -2.5);
        assert_eq!(r.bytes().unwrap(), b"field");
        assert_eq!(r.string().unwrap(), "søme ütf8");
        r.finish().unwrap();
    }

    #[test]
    fn field_reader_rejects_truncation_and_trailing_bytes() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"xyz");
        // Truncated length prefix.
        let mut r = FieldReader::new(&buf[..2], "short");
        assert!(matches!(r.bytes(), Err(StorageError::Corrupt(m)) if m.contains("short")));
        // Length prefix promising more than is present.
        let mut r = FieldReader::new(&buf[..5], "torn");
        assert!(r.bytes().is_err());
        // Trailing bytes.
        let mut r = FieldReader::new(&buf, "trailing");
        r.u32().unwrap();
        assert!(matches!(
            r.finish(),
            Err(StorageError::Corrupt(m)) if m.contains("trailing bytes")
        ));
    }

    #[test]
    fn field_reader_rest_consumes_remainder() {
        let buf = [1u8, 2, 3, 4, 5];
        let mut r = FieldReader::new(&buf, "rest");
        r.u8().unwrap();
        assert_eq!(r.rest(), &[2, 3, 4, 5]);
        assert_eq!(r.remaining(), 0);
        r.finish().unwrap();
    }

    #[test]
    fn container_roundtrips() {
        let magic = b"CORGITST";
        let payloads = vec![b"one".to_vec(), Vec::new(), vec![0u8; 300]];
        let bytes = encode_container(magic, &payloads);
        assert_eq!(decode_container(magic, &bytes, "test").unwrap(), payloads);
        // Empty container is valid too.
        let empty = encode_container(magic, &[]);
        assert!(decode_container(magic, &empty, "test").unwrap().is_empty());
    }

    #[test]
    fn container_detects_corruption() {
        let magic = b"CORGITST";
        let good = encode_container(magic, &[b"payload".to_vec()]);

        let mut flipped = good.clone();
        flipped[10] ^= 0x40;
        assert!(matches!(
            decode_container(magic, &flipped, "test"),
            Err(StorageError::Corrupt(m)) if m.contains("checksum")
        ));

        assert!(matches!(
            decode_container(b"WRONGMAG", &good, "test"),
            Err(StorageError::Corrupt(m)) if m.contains("bad magic")
        ));

        assert!(decode_container(magic, &good[..4], "test").is_err());

        // Truncating inside a payload breaks the CRC before field decoding.
        assert!(decode_container(magic, &good[..good.len() - 6], "test").is_err());

        // Trailing garbage after the declared fields breaks the CRC too.
        let mut padded = good.clone();
        padded.insert(good.len() - 4, 0xAB);
        assert!(decode_container(magic, &padded, "test").is_err());
    }
}
