//! Seeded sampling helpers.
//!
//! All randomness in the reproduction flows through seeded `StdRng`s so
//! every experiment is bit-reproducible. Normal variates use the Box–Muller
//! transform, keeping the dependency set to plain `rand`.

use rand::Rng;

/// Draw one standard-normal variate via Box–Muller.
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Fill a vector with `dim` standard-normal variates.
pub fn randn_vec<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| randn(rng)).collect()
}

/// Draw a random unit vector of the given dimension.
pub fn rand_unit_vec<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Vec<f32> {
    loop {
        let mut v = randn_vec(rng, dim);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-6 {
            for x in &mut v {
                *x /= norm;
            }
            return v;
        }
    }
}

/// Sample `k` distinct indices from `0..n`, returned sorted ascending.
///
/// Uses Floyd's algorithm: O(k) expected draws, no O(n) allocation.
pub fn sample_distinct_sorted<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct from {n}");
    let mut chosen = std::collections::BTreeSet::new();
    for j in n - k..n {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

/// Fisher–Yates shuffle of a slice using the supplied RNG.
pub fn shuffle_in_place<T, R: Rng + ?Sized>(rng: &mut R, slice: &mut [T]) {
    for i in (1..slice.len()).rev() {
        let j = rng.gen_range(0..=i);
        slice.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_has_roughly_unit_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let xs: Vec<f32> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean: f32 = xs.iter().sum::<f32>() / n as f32;
        let var: f32 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn unit_vec_has_unit_norm() {
        let mut rng = StdRng::seed_from_u64(2);
        for dim in [1, 3, 100] {
            let v = rand_unit_vec(&mut rng, dim);
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "dim {dim}: norm {norm}");
        }
    }

    #[test]
    fn sample_distinct_is_distinct_sorted_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let s = sample_distinct_sorted(&mut rng, 100, 17);
            assert_eq!(s.len(), 17);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 100));
        }
    }

    #[test]
    fn sample_all_gives_full_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = sample_distinct_sorted(&mut rng, 10, 10);
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_more_than_n_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        sample_distinct_sorted(&mut rng, 3, 4);
    }

    #[test]
    fn shuffle_is_permutation_and_seed_deterministic() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        shuffle_in_place(&mut StdRng::seed_from_u64(7), &mut a);
        shuffle_in_place(&mut StdRng::seed_from_u64(7), &mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            a,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }
}
