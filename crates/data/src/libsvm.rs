//! LIBSVM text format I/O.
//!
//! Four of the paper's datasets (higgs, susy, epsilon, criteo) ship in
//! LIBSVM format (`label idx:val idx:val …`, 1-based indices). This module
//! parses and writes that format so real data can replace the synthetic
//! generators without touching anything downstream.

use corgipile_storage::{FeatureVec, Table, TableConfig, Tuple};
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Errors from LIBSVM parsing.
#[derive(Debug)]
pub enum LibsvmError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for LibsvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LibsvmError::Io(e) => write!(f, "io error: {e}"),
            LibsvmError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for LibsvmError {}

impl From<io::Error> for LibsvmError {
    fn from(e: io::Error) -> Self {
        LibsvmError::Io(e)
    }
}

/// Parse a LIBSVM stream into tuples.
///
/// * `dim` — logical dimensionality; pass `None` to infer it as the maximum
///   index seen.
/// * `dense_threshold` — vectors whose nnz/dim ratio exceeds this are stored
///   densely.
pub fn read_libsvm<R: BufRead>(
    reader: R,
    dim: Option<u32>,
    dense_threshold: f64,
) -> Result<Vec<Tuple>, LibsvmError> {
    let mut rows: Vec<(f32, Vec<u32>, Vec<f32>)> = Vec::new();
    let mut max_idx = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let label: f32 = parts
            .next()
            .ok_or_else(|| LibsvmError::Parse {
                line: lineno + 1,
                message: "empty line".into(),
            })?
            .parse()
            .map_err(|e| LibsvmError::Parse {
                line: lineno + 1,
                message: format!("bad label: {e}"),
            })?;
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for tok in parts {
            let (i, v) = tok.split_once(':').ok_or_else(|| LibsvmError::Parse {
                line: lineno + 1,
                message: format!("expected idx:val, got {tok:?}"),
            })?;
            let i: u32 = i.parse().map_err(|e| LibsvmError::Parse {
                line: lineno + 1,
                message: format!("bad index {i:?}: {e}"),
            })?;
            if i == 0 {
                return Err(LibsvmError::Parse {
                    line: lineno + 1,
                    message: "LIBSVM indices are 1-based; got 0".into(),
                });
            }
            let v: f32 = v.parse().map_err(|e| LibsvmError::Parse {
                line: lineno + 1,
                message: format!("bad value {v:?}: {e}"),
            })?;
            let zero_based = i - 1;
            if let Some(&last) = indices.last() {
                if zero_based <= last {
                    return Err(LibsvmError::Parse {
                        line: lineno + 1,
                        message: "indices must be strictly increasing".into(),
                    });
                }
            }
            max_idx = max_idx.max(zero_based);
            indices.push(zero_based);
            values.push(v);
        }
        rows.push((label, indices, values));
    }
    let dim = dim.unwrap_or(if rows.iter().all(|r| r.1.is_empty()) {
        0
    } else {
        max_idx + 1
    });
    Ok(rows
        .into_iter()
        .enumerate()
        .map(|(id, (label, indices, values))| {
            let nnz = indices.len();
            let features = if dim > 0 && nnz as f64 / dim as f64 >= dense_threshold {
                let mut d = vec![0.0f32; dim as usize];
                for (i, v) in indices.iter().zip(&values) {
                    d[*i as usize] = *v;
                }
                FeatureVec::Dense(d)
            } else {
                FeatureVec::sparse(dim, indices, values)
            };
            Tuple {
                id: id as u64,
                features,
                label,
            }
        })
        .collect())
}

/// Read a LIBSVM file from disk.
pub fn read_libsvm_file(
    path: &Path,
    dim: Option<u32>,
    dense_threshold: f64,
) -> Result<Vec<Tuple>, LibsvmError> {
    let f = std::fs::File::open(path)?;
    read_libsvm(io::BufReader::new(f), dim, dense_threshold)
}

/// Write a LIBSVM file to disk.
pub fn write_libsvm_file(path: &Path, tuples: &[Tuple]) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_libsvm(&mut f, tuples)
}

/// Load a LIBSVM file straight into a heap table (tuple ids = line
/// numbers, i.e. storage positions).
pub fn load_libsvm_table(
    path: &Path,
    config: TableConfig,
    dim: Option<u32>,
    dense_threshold: f64,
) -> Result<Table, LibsvmError> {
    let mut tuples = read_libsvm_file(path, dim, dense_threshold)?;
    for (i, t) in tuples.iter_mut().enumerate() {
        t.id = i as u64;
    }
    Table::from_tuples(config, tuples).map_err(|e| LibsvmError::Parse {
        line: 0,
        message: format!("table build failed: {e}"),
    })
}

/// Write tuples in LIBSVM format (1-based indices, zeros omitted).
pub fn write_libsvm<W: Write>(writer: &mut W, tuples: &[Tuple]) -> io::Result<()> {
    for t in tuples {
        write!(writer, "{}", t.label)?;
        for (i, v) in t.features.iter() {
            if v != 0.0 {
                write!(writer, " {}:{}", i + 1, v)?;
            }
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parse_basic_sparse() {
        let text = "1 3:0.5 7:1.5\n-1 1:2.0\n";
        let tuples = read_libsvm(BufReader::new(text.as_bytes()), None, 0.9).unwrap();
        assert_eq!(tuples.len(), 2);
        assert_eq!(tuples[0].label, 1.0);
        assert_eq!(tuples[0].features.get(2), 0.5);
        assert_eq!(tuples[0].features.get(6), 1.5);
        assert_eq!(tuples[1].features.get(0), 2.0);
        assert_eq!(tuples[0].features.dim(), 7);
        assert_eq!(tuples[0].id, 0);
        assert_eq!(tuples[1].id, 1);
    }

    #[test]
    fn explicit_dim_and_densification() {
        let text = "1 1:1 2:2 3:3\n";
        let tuples = read_libsvm(BufReader::new(text.as_bytes()), Some(3), 0.5).unwrap();
        assert!(matches!(tuples[0].features, FeatureVec::Dense(_)));
        assert_eq!(tuples[0].features.get(1), 2.0);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let text = "# header\n\n1 1:1\n";
        let tuples = read_libsvm(BufReader::new(text.as_bytes()), None, 0.9).unwrap();
        assert_eq!(tuples.len(), 1);
    }

    #[test]
    fn rejects_zero_index() {
        let text = "1 0:1\n";
        assert!(read_libsvm(BufReader::new(text.as_bytes()), None, 0.9).is_err());
    }

    #[test]
    fn rejects_unordered_indices() {
        let text = "1 5:1 2:1\n";
        let err = read_libsvm(BufReader::new(text.as_bytes()), None, 0.9).unwrap_err();
        assert!(err.to_string().contains("increasing"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["x 1:1\n", "1 a:1\n", "1 1:z\n", "1 11\n"] {
            assert!(
                read_libsvm(BufReader::new(bad.as_bytes()), None, 0.9).is_err(),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn roundtrip_write_then_read() {
        let tuples = vec![
            Tuple::sparse(0, 10, vec![1, 4], vec![0.5, -2.0], 1.0),
            Tuple::sparse(1, 10, vec![0, 9], vec![1.0, 3.0], -1.0),
        ];
        let mut buf = Vec::new();
        write_libsvm(&mut buf, &tuples).unwrap();
        let back = read_libsvm(BufReader::new(&buf[..]), Some(10), 0.9).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in tuples.iter().zip(&back) {
            assert_eq!(a.label, b.label);
            for i in 0..10 {
                assert_eq!(a.features.get(i), b.features.get(i), "feature {i}");
            }
        }
    }

    #[test]
    fn dense_tuple_writes_nonzero_only() {
        let t = Tuple::dense(0, vec![0.0, 2.0, 0.0], 1.0);
        let mut buf = Vec::new();
        write_libsvm(&mut buf, &[t]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.trim(), "1 2:2");
    }

    #[test]
    fn file_roundtrip_and_table_load() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("corgi_libsvm_{}.txt", std::process::id()));
        let tuples = vec![
            Tuple::sparse(0, 50, vec![0, 7], vec![1.0, 2.0], 1.0),
            Tuple::sparse(1, 50, vec![3, 49], vec![-1.0, 0.5], -1.0),
            Tuple::sparse(2, 50, vec![10], vec![3.0], 1.0),
        ];
        write_libsvm_file(&path, &tuples).unwrap();
        let back = read_libsvm_file(&path, Some(50), 0.9).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[1].label, -1.0);

        let table =
            load_libsvm_table(&path, TableConfig::new("imported", 3), Some(50), 0.9).unwrap();
        assert_eq!(table.num_tuples(), 3);
        assert_eq!(table.get_tuple(2).unwrap().features.get(10), 3.0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_errors() {
        let path = std::env::temp_dir().join("corgi_libsvm_missing_file.txt");
        assert!(read_libsvm_file(&path, None, 0.9).is_err());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let tuples = read_libsvm(BufReader::new("".as_bytes()), None, 0.9).unwrap();
        assert!(tuples.is_empty());
    }
}
