//! Dataset specifications and materialized datasets.
//!
//! A [`DatasetSpec`] describes what to generate (family, sizes, storage
//! [`Order`], block size); [`DatasetSpec::build`] materializes a seeded
//! [`Dataset`] (train + test tuples) and [`Dataset::to_table`] lays the
//! train split out as a heap [`Table`].
//!
//! The storage order is the paper's central experimental variable:
//! `Shuffled` (i.i.d. on disk), `ClusteredByLabel` (all −1 tuples before
//! all +1 tuples — the worst case of §3), and `OrderedByFeature(j)` (§7.4.3).

use crate::generator::Generator;
use crate::rng::shuffle_in_place;
use corgipile_storage::{Table, TableConfig, Tuple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The example family a spec generates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataKind {
    /// Dense binary classification (higgs/susy/epsilon/yfcc analogues).
    DenseBinary {
        /// Feature dimensionality.
        dim: usize,
        /// Class separation.
        separation: f32,
        /// Rank of the correlated-noise subspace (0 = isotropic noise);
        /// wide embedding-style datasets use a low rank.
        noise_rank: usize,
    },
    /// Sparse binary classification (criteo analogue).
    SparseBinary {
        /// Logical dimensionality.
        dim: usize,
        /// Non-zeros per tuple.
        nnz: usize,
        /// Signal scale.
        separation: f32,
    },
    /// Multi-class classification (cifar/ImageNet/yelp/mini8m analogues).
    MultiClass {
        /// Feature dimensionality.
        dim: usize,
        /// Number of classes.
        classes: usize,
        /// Centroid separation.
        separation: f32,
    },
    /// Regression (YearPredictionMSD analogue).
    Regression {
        /// Feature dimensionality.
        dim: usize,
        /// Label noise σ.
        noise: f32,
    },
}

/// Physical storage order of the train split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Random order — the "shuffled version" of §3.
    Shuffled,
    /// All tuples sorted by label — the "clustered version" of §3
    /// (negatives before positives; multi-class sorted by class id).
    ClusteredByLabel,
    /// Sorted by the value of one feature (§7.4.3).
    OrderedByFeature(usize),
}

/// A full dataset description.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name (for catalogs and reports).
    pub name: String,
    /// Example family.
    pub kind: DataKind,
    /// Train split size.
    pub train: usize,
    /// Test split size.
    pub test: usize,
    /// Physical order of the train split.
    pub order: Order,
    /// Heap-table block size in bytes.
    pub block_bytes: usize,
}

impl DatasetSpec {
    /// A new spec with a 10:1 train/test split, shuffled order, 10 MB blocks.
    pub fn new(name: impl Into<String>, kind: DataKind, train: usize) -> Self {
        DatasetSpec {
            name: name.into(),
            kind,
            train,
            test: (train / 10).max(1),
            order: Order::Shuffled,
            block_bytes: 10 << 20,
        }
    }

    /// higgs-like: 28 dense features (paper Table 2), moderate separation
    /// tuned so converged accuracy lands in the 60–70 % band like higgs.
    pub fn higgs_like(train: usize) -> Self {
        Self::new(
            "higgs",
            DataKind::DenseBinary {
                dim: 28,
                separation: 0.5,
                noise_rank: 0,
            },
            train,
        )
    }

    /// susy-like: 18 dense features, ~79 % converged accuracy band.
    pub fn susy_like(train: usize) -> Self {
        Self::new(
            "susy",
            DataKind::DenseBinary {
                dim: 18,
                separation: 0.85,
                noise_rank: 0,
            },
            train,
        )
    }

    /// epsilon-like: 2 000 dense features (wide, TOASTed in storage).
    pub fn epsilon_like(train: usize) -> Self {
        Self::new(
            "epsilon",
            DataKind::DenseBinary {
                dim: 2000,
                separation: 1.75,
                noise_rank: 24,
            },
            train,
        )
    }

    /// criteo-like: sparse, 1 M logical dims scaled to 100 k, 39 nnz.
    pub fn criteo_like(train: usize) -> Self {
        Self::new(
            "criteo",
            DataKind::SparseBinary {
                dim: 100_000,
                nnz: 39,
                separation: 0.27,
            },
            train,
        )
    }

    /// yfcc-like: 4 096 dense features (very wide, TOASTed), ~96 % band.
    pub fn yfcc_like(train: usize) -> Self {
        Self::new(
            "yfcc",
            DataKind::DenseBinary {
                dim: 4096,
                separation: 2.45,
                noise_rank: 24,
            },
            train,
        )
    }

    /// cifar-10-like: 10 classes on 128 dense features.
    pub fn cifar_like(train: usize) -> Self {
        Self::new(
            "cifar10",
            DataKind::MultiClass {
                dim: 128,
                classes: 10,
                separation: 2.5,
            },
            train,
        )
    }

    /// ImageNet-like: many classes, wider features.
    pub fn imagenet_like(train: usize) -> Self {
        Self::new(
            "imagenet",
            DataKind::MultiClass {
                dim: 256,
                classes: 100,
                separation: 4.0,
            },
            train,
        )
    }

    /// yelp-review-like: 5 classes.
    pub fn yelp_like(train: usize) -> Self {
        Self::new(
            "yelp",
            DataKind::MultiClass {
                dim: 96,
                classes: 5,
                separation: 2.2,
            },
            train,
        )
    }

    /// YearPredictionMSD-like: regression on 90 dense features.
    pub fn msd_like(train: usize) -> Self {
        Self::new(
            "year_msd",
            DataKind::Regression {
                dim: 90,
                noise: 0.5,
            },
            train,
        )
    }

    /// mini8m-like: 10 classes on 784 dense features.
    pub fn mini8m_like(train: usize) -> Self {
        Self::new(
            "mini8m",
            DataKind::MultiClass {
                dim: 784,
                classes: 10,
                separation: 3.0,
            },
            train,
        )
    }

    /// Override the storage order.
    pub fn with_order(mut self, order: Order) -> Self {
        self.order = order;
        self
    }

    /// Override the block size.
    pub fn with_block_bytes(mut self, bytes: usize) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Override the test size.
    pub fn with_test(mut self, test: usize) -> Self {
        self.test = test;
        self
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        match self.kind {
            DataKind::DenseBinary { dim, .. }
            | DataKind::SparseBinary { dim, .. }
            | DataKind::MultiClass { dim, .. }
            | DataKind::Regression { dim, .. } => dim,
        }
    }

    /// Number of classes (0 for regression).
    pub fn num_classes(&self) -> usize {
        match self.kind {
            DataKind::DenseBinary { .. } | DataKind::SparseBinary { .. } => 2,
            DataKind::MultiClass { classes, .. } => classes,
            DataKind::Regression { .. } => 0,
        }
    }

    fn generator(&self, seed: u64) -> Generator {
        match self.kind {
            DataKind::DenseBinary {
                dim,
                separation,
                noise_rank,
            } => Generator::dense_binary_with_rank(dim, separation, noise_rank, seed),
            DataKind::SparseBinary {
                dim,
                nnz,
                separation,
            } => Generator::sparse_binary(dim, nnz, separation, seed),
            DataKind::MultiClass {
                dim,
                classes,
                separation,
            } => Generator::multi_class(dim, classes, separation, seed),
            DataKind::Regression { dim, noise } => Generator::regression(dim, noise, seed),
        }
    }

    /// Materialize the dataset with the given seed.
    pub fn build(&self, seed: u64) -> Dataset {
        let gen = self.generator(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train: Vec<(corgipile_storage::FeatureVec, f32)> =
            (0..self.train).map(|_| gen.sample(&mut rng)).collect();
        let test: Vec<Tuple> = (0..self.test)
            .map(|i| {
                let (f, y) = gen.sample(&mut rng);
                Tuple {
                    id: i as u64,
                    features: f,
                    label: y,
                }
            })
            .collect();

        match self.order {
            Order::Shuffled => {
                shuffle_in_place(&mut rng, &mut train);
            }
            Order::ClusteredByLabel => {
                train.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            }
            Order::OrderedByFeature(j) => {
                train.sort_by(|a, b| a.0.get(j).partial_cmp(&b.0.get(j)).unwrap());
            }
        }
        let train: Vec<Tuple> = train
            .into_iter()
            .enumerate()
            .map(|(i, (f, y))| Tuple {
                id: i as u64,
                features: f,
                label: y,
            })
            .collect();
        Dataset {
            spec: self.clone(),
            train,
            test,
        }
    }

    /// Convenience: build and lay out the train split as a heap table.
    pub fn build_table(&self, seed: u64) -> corgipile_storage::Result<Table> {
        self.build(seed).to_table(0)
    }
}

/// A materialized dataset: ordered train split plus i.i.d. test split.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The generating spec.
    pub spec: DatasetSpec,
    /// Train tuples, in storage order, ids = storage positions.
    pub train: Vec<Tuple>,
    /// Test tuples (always i.i.d. order).
    pub test: Vec<Tuple>,
}

impl Dataset {
    /// Lay the train split out as a heap table.
    pub fn to_table(&self, table_id: u32) -> corgipile_storage::Result<Table> {
        let cfg = TableConfig::new(self.spec.name.clone(), table_id)
            .with_block_bytes(self.spec.block_bytes);
        Table::from_tuples(cfg, self.train.iter().cloned())
    }

    /// Fraction of positive labels in the train split (binary data only).
    pub fn positive_fraction(&self) -> f64 {
        let pos = self.train.iter().filter(|t| t.label > 0.0).count();
        pos as f64 / self.train.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_order_sorts_negatives_first() {
        let ds = DatasetSpec::higgs_like(500)
            .with_order(Order::ClusteredByLabel)
            .build(1);
        let first_pos = ds.train.iter().position(|t| t.label > 0.0).unwrap();
        assert!(ds.train[..first_pos].iter().all(|t| t.label < 0.0));
        assert!(ds.train[first_pos..].iter().all(|t| t.label > 0.0));
        // ids are storage positions
        for (i, t) in ds.train.iter().enumerate() {
            assert_eq!(t.id, i as u64);
        }
    }

    #[test]
    fn shuffled_order_mixes_labels() {
        let ds = DatasetSpec::higgs_like(500).build(1);
        // In a shuffled layout the first 50 tuples should contain both labels.
        let head = &ds.train[..50];
        assert!(head.iter().any(|t| t.label > 0.0));
        assert!(head.iter().any(|t| t.label < 0.0));
    }

    #[test]
    fn feature_order_sorts_by_feature() {
        let ds = DatasetSpec::susy_like(300)
            .with_order(Order::OrderedByFeature(3))
            .build(2);
        let vals: Vec<f32> = ds.train.iter().map(|t| t.features.get(3)).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn build_is_seed_deterministic() {
        let spec = DatasetSpec::criteo_like(100);
        let a = spec.build(7);
        let b = spec.build(7);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let c = spec.build(8);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn to_table_roundtrips() {
        let ds = DatasetSpec::higgs_like(200)
            .with_order(Order::ClusteredByLabel)
            .build(3);
        let t = ds.to_table(5).unwrap();
        assert_eq!(t.num_tuples(), 200);
        let back = t.all_tuples();
        assert_eq!(back, ds.train);
    }

    #[test]
    fn test_split_is_iid_and_sized() {
        let ds = DatasetSpec::higgs_like(1000).with_test(100).build(4);
        assert_eq!(ds.test.len(), 100);
        assert!(ds.test.iter().any(|t| t.label > 0.0));
        assert!(ds.test.iter().any(|t| t.label < 0.0));
    }

    #[test]
    fn positive_fraction_near_half() {
        let ds = DatasetSpec::susy_like(2000).build(5);
        let f = ds.positive_fraction();
        assert!((f - 0.5).abs() < 0.05, "positive fraction {f}");
    }

    #[test]
    fn spec_accessors() {
        let s = DatasetSpec::cifar_like(10);
        assert_eq!(s.dim(), 128);
        assert_eq!(s.num_classes(), 10);
        let r = DatasetSpec::msd_like(10);
        assert_eq!(r.num_classes(), 0);
        assert_eq!(DatasetSpec::criteo_like(10).num_classes(), 2);
    }

    #[test]
    fn epsilon_like_is_toasted_in_storage() {
        let t = DatasetSpec::epsilon_like(30).build_table(6).unwrap();
        assert!(
            t.is_toasted(),
            "2000-dim dense tuples exceed the TOAST threshold"
        );
    }

    #[test]
    fn multiclass_clustered_sorts_by_class() {
        let ds = DatasetSpec::cifar_like(300)
            .with_order(Order::ClusteredByLabel)
            .build(9);
        let labels: Vec<f32> = ds.train.iter().map(|t| t.label).collect();
        assert!(labels.windows(2).all(|w| w[0] <= w[1]));
    }
}
