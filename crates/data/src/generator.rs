//! Low-level example generators.
//!
//! Each generator produces `(features, label)` pairs from a fixed ground
//! truth, so every dataset has a learnable signal and a known Bayes-optimal
//! accuracy ceiling:
//!
//! * **Dense binary** — a two-component Gaussian mixture `x = y·s·u + ε`
//!   with unit vector `u` and separation `s`; learnable by LR/SVM, Bayes
//!   accuracy `Φ(s)`.
//! * **Sparse binary** — criteo-like: `nnz` active features out of `dim`,
//!   values correlated with the label through a hidden dense weight vector.
//! * **Multi-class** — class centroids on random unit directions plus
//!   Gaussian noise; learnable by softmax regression and MLPs.
//! * **Regression** — `y = w*·x + ε`.

use crate::rng::{rand_unit_vec, randn, randn_vec, sample_distinct_sorted};
use corgipile_storage::FeatureVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generator for one labelled example family.
#[derive(Debug, Clone)]
pub enum Generator {
    /// Two-class Gaussian mixture; labels in {-1, +1}.
    DenseBinary {
        /// Feature dimensionality.
        dim: usize,
        /// Class separation in units of noise σ.
        separation: f32,
        /// Hidden direction of separation (unit vector of length `dim`).
        direction: Vec<f32>,
        /// Common offset shared by both classes (unit vector). Real data
        /// sets are not mirror-symmetric around the origin; without this
        /// the per-class mean *gradients* coincide and the paper's
        /// block-variance factor `h_D` would be artificially deflated.
        offset: Vec<f32>,
        /// Low-rank noise basis (empty = isotropic noise). Real wide
        /// datasets (epsilon's learned features, yfcc's CNN embeddings)
        /// have strongly correlated coordinates; with isotropic noise in
        /// thousands of dimensions, per-example gradients are nearly
        /// orthogonal and sequential SGD never "forgets" — which would
        /// erase the paper's No-Shuffle pathology on wide data. A rank-k
        /// basis confines examples to a shared subspace and restores the
        /// interference.
        noise_basis: Vec<Vec<f32>>,
    },
    /// Sparse binary; labels in {-1, +1}.
    SparseBinary {
        /// Logical dimensionality (e.g. 10⁶ for criteo-like).
        dim: usize,
        /// Non-zeros per example.
        nnz: usize,
        /// Hidden dense weights over a smaller "informative" prefix.
        informative: Vec<f32>,
        /// Signal scale.
        separation: f32,
    },
    /// k-class Gaussian mixture; labels are class indices 0..k.
    MultiClass {
        /// Feature dimensionality.
        dim: usize,
        /// Per-class centroid.
        centroids: Vec<Vec<f32>>,
        /// Noise σ.
        noise: f32,
    },
    /// Linear regression; labels are real.
    Regression {
        /// Feature dimensionality.
        dim: usize,
        /// Ground-truth weights.
        weights: Vec<f32>,
        /// Intercept.
        bias: f32,
        /// Label noise σ.
        noise: f32,
    },
}

impl Generator {
    /// Dense binary family with the given dimension and separation.
    pub fn dense_binary(dim: usize, separation: f32, seed: u64) -> Self {
        Self::dense_binary_with_rank(dim, separation, 0, seed)
    }

    /// Dense binary family with rank-`rank` correlated noise (0 = isotropic).
    pub fn dense_binary_with_rank(dim: usize, separation: f32, rank: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        let mut direction = rand_unit_vec(&mut rng, dim);
        // Real tabular datasets have a few engineered features carrying a
        // disproportionate share of the signal (the higgs "high-level"
        // features). Concentrate ~60% of the direction's mass on one
        // coordinate so feature-ordered storage (§7.4.3) can actually
        // cluster the labels; the total signal ‖u‖ = 1 (and hence the
        // Bayes ceiling) is unchanged.
        let star = rng.gen_range(0..dim);
        direction[star] = 1.33 * direction[star].signum();
        let norm: f32 = direction.iter().map(|v| v * v).sum::<f32>().sqrt();
        for v in &mut direction {
            *v /= norm;
        }
        let offset = rand_unit_vec(&mut rng, dim);
        // Basis vectors scaled so per-coordinate variance stays ≈ 1:
        // residual isotropic noise contributes 0.09, the k basis directions
        // the remaining 0.91.
        let scale = if rank > 0 {
            (0.91 * dim as f32 / rank as f32).sqrt()
        } else {
            0.0
        };
        let noise_basis = (0..rank)
            .map(|_| {
                rand_unit_vec(&mut rng, dim)
                    .into_iter()
                    .map(|v| v * scale)
                    .collect()
            })
            .collect();
        Generator::DenseBinary {
            dim,
            separation,
            direction,
            offset,
            noise_basis,
        }
    }

    /// Sparse binary family; the first `dim/10` (≥ `nnz`) dimensions carry
    /// signal.
    pub fn sparse_binary(dim: usize, nnz: usize, separation: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5BA2);
        let informative_len = (dim / 10).max(nnz).min(dim);
        let informative = randn_vec(&mut rng, informative_len);
        Generator::SparseBinary {
            dim,
            nnz,
            informative,
            separation,
        }
    }

    /// Multi-class family with `classes` centroids at distance `separation`.
    pub fn multi_class(dim: usize, classes: usize, separation: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A5);
        let centroids = (0..classes)
            .map(|_| {
                rand_unit_vec(&mut rng, dim)
                    .into_iter()
                    .map(|x| x * separation)
                    .collect()
            })
            .collect();
        Generator::MultiClass {
            dim,
            centroids,
            noise: 1.0,
        }
    }

    /// Regression family.
    pub fn regression(dim: usize, noise: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4E64);
        let weights = randn_vec(&mut rng, dim);
        let bias = randn(&mut rng);
        Generator::Regression {
            dim,
            weights,
            bias,
            noise,
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        match self {
            Generator::DenseBinary { dim, .. }
            | Generator::SparseBinary { dim, .. }
            | Generator::MultiClass { dim, .. }
            | Generator::Regression { dim, .. } => *dim,
        }
    }

    /// Number of classes (2 for binary, k for multi-class, 0 for regression).
    pub fn num_classes(&self) -> usize {
        match self {
            Generator::DenseBinary { .. } | Generator::SparseBinary { .. } => 2,
            Generator::MultiClass { centroids, .. } => centroids.len(),
            Generator::Regression { .. } => 0,
        }
    }

    /// Draw one `(features, label)` example.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (FeatureVec, f32) {
        match self {
            Generator::DenseBinary {
                dim,
                separation,
                direction,
                offset,
                noise_basis,
            } => {
                let y: f32 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                // Full-strength isotropic noise keeps the Bayes ceiling at
                // Φ(separation); the low-rank component rides on top and
                // gives examples a shared subspace.
                let mut x = randn_vec(rng, *dim);
                for basis in noise_basis {
                    let z = randn(rng);
                    for (xi, bi) in x.iter_mut().zip(basis) {
                        *xi += z * bi;
                    }
                }
                for ((xi, ui), ci) in x.iter_mut().zip(direction).zip(offset) {
                    *xi += y * separation * ui + ci;
                }
                if !noise_basis.is_empty() {
                    // Embedding-style datasets (epsilon, yfcc) ship with
                    // unit-normalized rows. Normalization is what makes a
                    // clustered scan hurt wide data: with raw Gaussian rows
                    // the per-example self-term lr·‖x‖² dwarfs the one-sided
                    // drift and No Shuffle would (unrealistically) converge.
                    let norm: f32 = x.iter().map(|v| v * v).sum::<f32>().sqrt();
                    if norm > 1e-12 {
                        for v in x.iter_mut() {
                            *v /= norm;
                        }
                    }
                }
                (FeatureVec::Dense(x), y)
            }
            Generator::SparseBinary {
                dim,
                nnz,
                informative,
                separation,
            } => {
                let y: f32 = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                // Half the non-zeros come from the informative prefix and
                // carry signal; the rest are uniform noise features.
                let k_info = (*nnz).div_ceil(2);
                let k_noise = *nnz - k_info;
                let mut idx = sample_distinct_sorted(rng, informative.len(), k_info);
                if k_noise > 0 && *dim > informative.len() {
                    let noise_idx = sample_distinct_sorted(rng, *dim - informative.len(), k_noise);
                    idx.extend(noise_idx.into_iter().map(|i| i + informative.len()));
                }
                idx.sort_unstable();
                idx.dedup();
                let values: Vec<f32> = idx
                    .iter()
                    .map(|&i| {
                        if i < informative.len() {
                            y * separation * informative[i] + randn(rng)
                        } else {
                            randn(rng)
                        }
                    })
                    .collect();
                let indices: Vec<u32> = idx.into_iter().map(|i| i as u32).collect();
                (FeatureVec::sparse(*dim as u32, indices, values), y)
            }
            Generator::MultiClass {
                dim,
                centroids,
                noise,
            } => {
                let c = rng.gen_range(0..centroids.len());
                let mut x = randn_vec(rng, *dim);
                for (xi, mi) in x.iter_mut().zip(&centroids[c]) {
                    *xi = *xi * noise + mi;
                }
                (FeatureVec::Dense(x), c as f32)
            }
            Generator::Regression {
                dim,
                weights,
                bias,
                noise,
            } => {
                let x = randn_vec(rng, *dim);
                let y: f32 = x.iter().zip(weights).map(|(a, b)| a * b).sum::<f32>()
                    + bias
                    + noise * randn(rng);
                (FeatureVec::Dense(x), y)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_binary_is_linearly_separable_by_direction() {
        let g = Generator::dense_binary(20, 3.0, 1);
        let dir = match &g {
            Generator::DenseBinary { direction, .. } => direction.clone(),
            _ => unreachable!(),
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut correct = 0;
        let n = 2000;
        for _ in 0..n {
            let (x, y) = g.sample(&mut rng);
            let score = x.dot(&dir);
            if (score > 0.0) == (y > 0.0) {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!(
            acc > 0.97,
            "separation 3 should give ~99.9% oracle accuracy, got {acc}"
        );
    }

    #[test]
    fn dense_binary_labels_balanced() {
        let g = Generator::dense_binary(4, 1.0, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 4000;
        let pos = (0..n).filter(|_| g.sample(&mut rng).1 > 0.0).count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "label fraction {frac}");
    }

    #[test]
    fn sparse_binary_has_requested_nnz_and_dim() {
        let g = Generator::sparse_binary(100_000, 39, 1.5, 7);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let (x, y) = g.sample(&mut rng);
            assert_eq!(x.dim(), 100_000);
            assert!(x.nnz() <= 39 && x.nnz() >= 20, "nnz {}", x.nnz());
            assert!(y == 1.0 || y == -1.0);
        }
    }

    #[test]
    fn sparse_binary_signal_correlates_with_label() {
        let g = Generator::sparse_binary(1000, 20, 2.0, 9);
        let informative = match &g {
            Generator::SparseBinary { informative, .. } => informative.clone(),
            _ => unreachable!(),
        };
        let mut w = vec![0.0f32; 1000];
        w[..informative.len()].copy_from_slice(&informative);
        let mut rng = StdRng::seed_from_u64(10);
        let n = 1000;
        let correct = (0..n)
            .filter(|_| {
                let (x, y) = g.sample(&mut rng);
                (x.dot(&w) > 0.0) == (y > 0.0)
            })
            .count();
        assert!(
            correct as f64 / n as f64 > 0.9,
            "oracle accuracy {correct}/{n}"
        );
    }

    #[test]
    fn multi_class_labels_cover_all_classes() {
        let g = Generator::multi_class(16, 10, 3.0, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let (_, y) = g.sample(&mut rng);
            seen[y as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 classes should appear");
        assert_eq!(g.num_classes(), 10);
    }

    #[test]
    fn multi_class_nearest_centroid_is_accurate() {
        let g = Generator::multi_class(32, 5, 4.0, 6);
        let centroids = match &g {
            Generator::MultiClass { centroids, .. } => centroids.clone(),
            _ => unreachable!(),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let n = 1000;
        let correct = (0..n)
            .filter(|_| {
                let (x, y) = g.sample(&mut rng);
                let xd: Vec<f32> = (0..x.dim()).map(|i| x.get(i)).collect();
                let best = centroids
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let da: f32 = xd.iter().zip(*a).map(|(p, q)| (p - q) * (p - q)).sum();
                        let db: f32 = xd.iter().zip(*b).map(|(p, q)| (p - q) * (p - q)).sum();
                        da.partial_cmp(&db).unwrap()
                    })
                    .map(|(i, _)| i)
                    .unwrap();
                best as f32 == y
            })
            .count();
        assert!(
            correct as f64 / n as f64 > 0.9,
            "oracle accuracy {correct}/{n}"
        );
    }

    #[test]
    fn regression_labels_follow_linear_model() {
        let g = Generator::regression(8, 0.01, 11);
        let (w, b) = match &g {
            Generator::Regression { weights, bias, .. } => (weights.clone(), *bias),
            _ => unreachable!(),
        };
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..100 {
            let (x, y) = g.sample(&mut rng);
            let pred = x.dot(&w) + b;
            assert!((pred - y).abs() < 0.1, "pred {pred} vs y {y}");
        }
        assert_eq!(g.num_classes(), 0);
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let g = Generator::dense_binary(8, 2.0, 42);
        let a: Vec<(FeatureVec, f32)> = (0..10)
            .map(|_| g.sample(&mut StdRng::seed_from_u64(1)))
            .collect();
        let b: Vec<(FeatureVec, f32)> = (0..10)
            .map(|_| g.sample(&mut StdRng::seed_from_u64(1)))
            .collect();
        assert_eq!(a, b);
    }
}
