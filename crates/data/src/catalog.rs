//! Named dataset catalog mirroring the paper's Table 2.
//!
//! Each entry pairs a scaled-down [`DatasetSpec`] with the paper's original
//! scale, so the bench harness can print a Table-2 analogue and experiments
//! can pick datasets by name. Scale factors keep every experiment runnable
//! on a laptop while preserving tuple geometry (dimensionality, sparsity,
//! width) and therefore per-tuple I/O/compute ratios.

use crate::spec::DatasetSpec;

/// One row of the Table-2 analogue.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Scaled-down spec used in experiments.
    pub spec: DatasetSpec,
    /// Dataset type string as printed in Table 2 ("dense", "sparse", …).
    pub dtype: &'static str,
    /// Paper's train/test tuple counts (for the report).
    pub paper_tuples: &'static str,
    /// Paper's feature count string.
    pub paper_features: &'static str,
    /// Paper's on-disk size string.
    pub paper_size: &'static str,
}

/// The default experiment scale for GLM datasets (tuples in the train split).
pub const GLM_SCALE: usize = 8_000;

/// Build the full catalog at the default scale.
pub fn paper_catalog() -> Vec<CatalogEntry> {
    catalog_at_scale(GLM_SCALE)
}

/// Build the catalog with `scale` tuples per GLM dataset (deep-learning and
/// regression datasets use proportional sizes).
pub fn catalog_at_scale(scale: usize) -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            spec: DatasetSpec::higgs_like(scale),
            dtype: "dense",
            paper_tuples: "10.0/1.0M",
            paper_features: "28",
            paper_size: "2.8 GB",
        },
        CatalogEntry {
            spec: DatasetSpec::susy_like(scale / 2),
            dtype: "dense",
            paper_tuples: "4.5/0.5M",
            paper_features: "18",
            paper_size: "0.9 GB",
        },
        CatalogEntry {
            spec: DatasetSpec::epsilon_like(scale / 10),
            dtype: "dense",
            paper_tuples: "0.4/0.1M",
            paper_features: "2,000",
            paper_size: "6.3 GB",
        },
        CatalogEntry {
            spec: DatasetSpec::criteo_like(scale),
            dtype: "sparse",
            paper_tuples: "92/6.0M",
            paper_features: "1,000,000",
            paper_size: "50 GB",
        },
        CatalogEntry {
            spec: DatasetSpec::yfcc_like(scale / 10),
            dtype: "dense",
            paper_tuples: "3.3/0.3M",
            paper_features: "4,096",
            paper_size: "55 GB",
        },
        CatalogEntry {
            spec: DatasetSpec::imagenet_like(scale / 4),
            dtype: "image",
            paper_tuples: "1.3/0.05M",
            paper_features: "224*224*3",
            paper_size: "150 GB",
        },
        CatalogEntry {
            spec: DatasetSpec::cifar_like(scale / 4),
            dtype: "image",
            paper_tuples: "0.05/0.01M",
            paper_features: "3,072",
            paper_size: "178 MB",
        },
        CatalogEntry {
            spec: DatasetSpec::yelp_like(scale / 4),
            dtype: "text",
            paper_tuples: "0.65/0.05M",
            paper_features: "-",
            paper_size: "600 MB",
        },
        CatalogEntry {
            spec: DatasetSpec::msd_like(scale / 2),
            dtype: "dense",
            paper_tuples: "0.46/0.05M",
            paper_features: "90",
            paper_size: "0.4 GB",
        },
        CatalogEntry {
            spec: DatasetSpec::mini8m_like(scale / 8),
            dtype: "dense",
            paper_tuples: "8.1/0.1M",
            paper_features: "784",
            paper_size: "19 GB",
        },
    ]
}

/// Look an entry up by dataset name.
pub fn by_name(name: &str) -> Option<CatalogEntry> {
    paper_catalog().into_iter().find(|e| e.spec.name == name)
}

/// The five GLM datasets used by Figures 11–13 (higgs, susy, epsilon,
/// criteo, yfcc), at a chosen scale.
pub fn glm_datasets(scale: usize) -> Vec<DatasetSpec> {
    vec![
        DatasetSpec::higgs_like(scale),
        DatasetSpec::susy_like(scale / 2),
        DatasetSpec::epsilon_like(scale / 10),
        DatasetSpec::criteo_like(scale),
        DatasetSpec::yfcc_like(scale / 10),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_paper_datasets() {
        let names: Vec<String> = paper_catalog().into_iter().map(|e| e.spec.name).collect();
        for want in [
            "higgs", "susy", "epsilon", "criteo", "yfcc", "imagenet", "cifar10", "yelp",
            "year_msd", "mini8m",
        ] {
            assert!(names.iter().any(|n| n == want), "missing {want}");
        }
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("higgs").is_some());
        assert!(by_name("no_such_dataset").is_none());
    }

    #[test]
    fn glm_datasets_are_the_fig11_five() {
        let names: Vec<String> = glm_datasets(1000).into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["higgs", "susy", "epsilon", "criteo", "yfcc"]);
    }

    #[test]
    fn catalog_specs_build_tiny() {
        for e in catalog_at_scale(80) {
            let ds = e.spec.build(1);
            assert_eq!(ds.train.len(), e.spec.train);
            assert!(!ds.test.is_empty());
        }
    }
}
