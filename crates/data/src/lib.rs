//! # corgipile-data
//!
//! Synthetic dataset generators standing in for the paper's workloads.
//!
//! The paper evaluates on higgs, susy, epsilon, criteo, yfcc (generalized
//! linear models), cifar-10, ImageNet, yelp-review-full (deep models),
//! YearPredictionMSD (regression) and mini8m (multi-class) — tens of
//! gigabytes of proprietary or large public data we cannot ship. The
//! shuffle-strategy phenomena under study depend only on *data order*
//! (clustered vs shuffled vs feature-ordered) and tuple geometry
//! (dense/sparse, dimensionality, width), so each dataset is replaced by a
//! seeded synthetic generator with the same schema and a controllable
//! storage order (see DESIGN.md §2).
//!
//! * [`spec`] — [`DatasetSpec`]: what to generate, at what size, in what
//!   [`Order`]; [`Dataset`]: the materialized train/test split.
//! * [`generator`] — the Gaussian-mixture / sparse / regression generators.
//! * [`catalog`] — named specs mirroring Table 2, with scaled-down sizes.
//! * [`libsvm`] — LIBSVM-format text I/O (the format of four of the paper's
//!   datasets), so real data can be dropped in when available.
//! * [`rng`] — seeded normal/uniform sampling helpers (Box–Muller; avoids a
//!   `rand_distr` dependency).

pub mod catalog;
pub mod generator;
pub mod libsvm;
pub mod rng;
pub mod spec;

pub use catalog::{paper_catalog, CatalogEntry};
pub use spec::{DataKind, Dataset, DatasetSpec, Order};
