//! Observability end to end: `EXPLAIN ANALYZE`, `SHOW STATS`, and the
//! JSON / Prometheus exporters.
//!
//! ```sh
//! cargo run --release --example telemetry
//! ```
//!
//! Opens a session over a simulated SSD (telemetry is on by default),
//! trains a CorgiPile SVM under `EXPLAIN ANALYZE` to get the annotated
//! operator tree — actual rows, buffer fills, cache hit rate, retries,
//! per-operator I/O seconds — then dumps the raw instruments via
//! `SHOW STATS` and exports the same snapshot as JSON and Prometheus
//! text.

use corgipile::data::{DatasetSpec, Order};
use corgipile::db::{Database, QueryResult};
use corgipile::storage::SimDevice;

fn main() {
    let table = DatasetSpec::susy_like(10_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(5)
        .expect("table builds");
    let cache = table.total_bytes() * 3;
    let mut session = Database::new(SimDevice::ssd_scaled(1280.0, cache)).connect();
    session.register_table("susy", table);

    // 1. EXPLAIN ANALYZE: run the training query and annotate every plan
    //    node with what actually happened.
    let sql = "EXPLAIN ANALYZE SELECT * FROM susy TRAIN BY svm WITH \
               learning_rate = 0.03, decay = 0.8, max_epoch_num = 4, \
               buffer_fraction = 0.1, strategy = 'corgipile', model_name = susy_svm";
    println!("=== EXPLAIN ANALYZE ===");
    match session.execute(sql).expect("query runs") {
        QueryResult::Plan(lines) => {
            for line in &lines {
                println!("{line}");
            }
        }
        _ => unreachable!(),
    }

    // 2. SHOW STATS: every counter, gauge, histogram and the event-log
    //    summary the run recorded.
    println!("\n=== SHOW STATS ===");
    match session.execute("SHOW STATS").expect("stats run") {
        QueryResult::Plan(lines) => {
            for line in &lines {
                println!("{line}");
            }
        }
        _ => unreachable!(),
    }

    // 3. Exporters: the same snapshot as machine-readable JSON (what
    //    crates/bench embeds into results/<id>.json) and Prometheus text.
    let telemetry = session.telemetry().clone();
    let json = telemetry.json();
    println!("\n=== JSON snapshot ({} bytes) ===", json.len());
    let preview: String = json.chars().take(400).collect();
    println!("{preview}…");

    println!("\n=== Prometheus exposition (first 12 lines) ===");
    for line in telemetry.prometheus().lines().take(12) {
        println!("{line}");
    }

    // Per-epoch events drive Figure-7-style I/O traces.
    println!("\n=== per-epoch events ===");
    for ev in telemetry
        .events()
        .iter()
        .filter(|e| e.name == "db.epoch.io_seconds")
    {
        println!("epoch {}: io = {:.4}s", ev.epoch, ev.value);
    }
}
