//! Quickstart: train an SVM over clustered data with CorgiPile.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a label-clustered higgs-like table (the paper's worst case for
//! sequential SGD), then trains with three strategies over a simulated HDD
//! and prints the paper's headline comparison: CorgiPile reaches Shuffle
//! Once's accuracy without paying for the offline shuffle, while No
//! Shuffle never converges.

use corgipile::core::{CorgiPileConfig, Trainer, TrainerConfig};
use corgipile::data::{DatasetSpec, Order};
use corgipile::ml::{ModelKind, OptimizerKind};
use corgipile::shuffle::StrategyKind;
use corgipile::storage::SimDevice;

fn main() {
    // 24k tuples, negatives stored before positives, ~8 KB blocks
    // (representing the paper's 10 MB blocks at 1/1280 scale).
    let spec = DatasetSpec::higgs_like(24_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10);
    let ds = spec.build(42);
    let table = ds.to_table(1).expect("table builds");
    println!(
        "dataset: {} tuples, {} blocks of ~{:.0} tuples, clustered by label\n",
        table.num_tuples(),
        table.num_blocks(),
        table.tuples_per_block()
    );

    println!(
        "{:<24} {:>10} {:>12} {:>14}",
        "strategy", "test acc", "total time", "epoch0 starts"
    );
    for strategy in [
        StrategyKind::NoShuffle,
        StrategyKind::ShuffleOnce,
        StrategyKind::CorgiPile,
    ] {
        let cfg = TrainerConfig::new(ModelKind::Svm, 8)
            .with_strategy(strategy)
            .with_optimizer(OptimizerKind::Sgd {
                lr0: 0.03,
                decay: 0.8,
            })
            .with_corgipile(CorgiPileConfig::default().with_buffer_fraction(0.1));
        // Simulated HDD with the paper-preserving seek/transfer ratio.
        let mut dev = SimDevice::hdd_scaled(1280.0, table.total_bytes() * 3);
        let report = Trainer::new(cfg)
            .train_with_test(&table, &ds.test, &mut dev, 7)
            .expect("training runs");
        let first = &report.epochs[0];
        println!(
            "{:<24} {:>9.1}% {:>11.1}ms {:>13.1}ms",
            strategy.display(),
            report.final_test_metric().unwrap() * 100.0,
            report.total_sim_seconds() * 1e3,
            (first.setup_seconds + first.epoch_seconds) * 1e3,
        );
    }
    println!("\nCorgiPile matches Shuffle Once's accuracy and skips its offline shuffle;");
    println!("No Shuffle is fastest but stuck at chance on clustered data (paper Fig. 1).");
}
