//! Persistence workflow: import a LIBSVM file, save/load heap tables and
//! trained models to real files.
//!
//! ```sh
//! cargo run --release --example persistence
//! ```
//!
//! 1. write a LIBSVM dataset to disk (the format of the paper's
//!    higgs/susy/epsilon/criteo downloads);
//! 2. import it into a heap table with 8 KB blocks;
//! 3. save the table in the binary heap format and reload it;
//! 4. train via SQL, export the model blob, reload it in a fresh session
//!    and predict with it.

use corgipile::core::ThreadedLoader;
use corgipile::data::libsvm::{load_libsvm_table, write_libsvm_file};
use corgipile::data::{DatasetSpec, Order};
use corgipile::db::{Database, QueryResult, StoredModel};
use corgipile::storage::{load_table, save_table, FileTable, SimDevice, TableConfig};
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join(format!("corgipile_demo_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // 1. Materialize a clustered dataset as a LIBSVM text file.
    let ds = DatasetSpec::criteo_like(4_000)
        .with_order(Order::ClusteredByLabel)
        .build(17);
    let libsvm_path = dir.join("criteo_like.libsvm");
    write_libsvm_file(&libsvm_path, &ds.train).expect("write libsvm");
    println!(
        "wrote {} ({} tuples, LIBSVM text)",
        libsvm_path.display(),
        ds.train.len()
    );

    // 2. Import into a heap table.
    let cfg = TableConfig::new("criteo", 1).with_block_bytes(16 << 10);
    let table = load_libsvm_table(&libsvm_path, cfg, Some(100_000), 0.5).expect("import libsvm");
    println!(
        "imported: {} tuples in {} blocks of ~{:.0} tuples",
        table.num_tuples(),
        table.num_blocks(),
        table.tuples_per_block()
    );

    // 3. Save + reload the heap table (binary format).
    let table_path = dir.join("criteo.tbl");
    save_table(&table, &table_path).expect("save table");
    let reloaded = load_table(&table_path).expect("load table");
    assert_eq!(reloaded.all_tuples(), table.all_tuples());
    println!(
        "heap file round-trip OK ({} bytes on disk)",
        std::fs::metadata(&table_path).unwrap().len()
    );

    // 3b. Block-addressable access against the real file: CorgiPile's
    // block shuffle with actual positioned reads, feeding the
    // double-buffered loader.
    let ft = Arc::new(FileTable::open(&table_path).expect("open heap file"));
    let streamed = ThreadedLoader::spawn_file(ft.clone(), 8, 99).count();
    println!(
        "file-backed CorgiPile epoch: streamed {streamed} tuples from {} on-disk blocks",
        ft.num_blocks()
    );

    // 4. Train in a session, export the model, reload elsewhere.
    let mut session = Database::new(SimDevice::ssd_scaled(640.0, 64 << 20)).connect();
    session.register_table("criteo", reloaded.clone());
    let summary = match session
        .execute(
            "SELECT * FROM criteo TRAIN BY lr WITH learning_rate = 0.03, decay = 0.8, \
             max_epoch_num = 6, model_name = clicks",
        )
        .expect("train")
    {
        QueryResult::Train(t) => t,
        _ => unreachable!(),
    };
    println!(
        "trained '{}': accuracy {:.1}% in {:.1} simulated ms",
        summary.model_name,
        summary.final_train_metric * 100.0,
        summary.total_seconds() * 1e3
    );

    let model_path = dir.join("clicks.model");
    session
        .catalog()
        .model("clicks")
        .unwrap()
        .save(&model_path)
        .expect("save model");

    // A brand-new session, as a different process would see it.
    let mut fresh = Database::new(SimDevice::ssd_scaled(640.0, 64 << 20)).connect();
    fresh.register_table("criteo", reloaded);
    let restored = StoredModel::load(&model_path).expect("load model");
    fresh.catalog().store_model("clicks", restored);
    match fresh
        .execute("SELECT * FROM criteo PREDICT BY clicks")
        .expect("predict")
    {
        QueryResult::Predict { metric, .. } => {
            println!(
                "model blob round-trip OK: fresh session predicts at {:.1}%",
                metric * 100.0
            );
        }
        _ => unreachable!(),
    }

    std::fs::remove_dir_all(&dir).ok();
}
