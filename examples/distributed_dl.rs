//! Multi-worker ("distributed") deep learning with CorgiPile (§5).
//!
//! ```sh
//! cargo run --release --example distributed_dl
//! ```
//!
//! Trains an MLP on a clustered multi-class dataset with 4 workers: a
//! shared-seed block permutation split across workers, per-worker tuple
//! buffers, and real worker threads computing partial gradients that are
//! AllReduce-averaged each step — the paper's PyTorch-DDP integration in
//! miniature. Also demonstrates the double-buffered threaded loader
//! (§6.3) feeding a single-process run.

use corgipile::core::{parallel_epoch_plan, train_parallel, ParallelConfig, ThreadedLoader};
use corgipile::data::{DatasetSpec, Order};
use corgipile::ml::{accuracy, build_model, ModelKind, Optimizer, Sgd};

fn main() {
    let spec = DatasetSpec::cifar_like(6_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10);
    let ds = spec.build(21);
    let table = ds.to_table(1).expect("table builds");
    let workers = 4;
    println!(
        "clustered {}-class dataset: {} tuples, {} blocks; {workers} workers\n",
        spec.num_classes(),
        table.num_tuples(),
        table.num_blocks()
    );

    // --- DDP-style multi-worker CorgiPile --------------------------------
    let cfg = ParallelConfig {
        workers,
        total_buffer_fraction: 0.10,
        batch_size: 128,
        seed: 9,
        ..Default::default()
    };
    let kind = ModelKind::Mlp {
        hidden: vec![48],
        classes: spec.num_classes(),
    };
    let mut model = build_model(&kind, spec.dim(), 1);
    let mut opt = Sgd::new(0.1, 0.95);
    println!("epoch  mean_loss  test_acc");
    for epoch in 0..8 {
        opt.set_epoch(epoch);
        let plan = parallel_epoch_plan(&table, &cfg, epoch);
        let loss = train_parallel(model.as_mut(), &mut opt, &plan.merged_batches, workers);
        println!(
            "{epoch:>5}  {loss:>9.4}  {:>7.1}%",
            accuracy(model.as_ref(), &ds.test) * 100.0
        );
    }

    // --- Threaded double-buffered loader ---------------------------------
    let loader = ThreadedLoader::spawn(table.clone(), 4, 77);
    let mut count = 0usize;
    let mut label_sum = 0.0f64;
    for t in loader {
        count += 1;
        label_sum += t.label as f64;
    }
    println!(
        "\nthreaded double-buffered loader streamed {count} tuples \
         (mean class {:.2}) while overlapping load and consume",
        label_sum / count as f64
    );
}
