//! Visualize what each shuffle strategy does to a clustered table
//! (the paper's Figures 3 and 4, as ASCII).
//!
//! ```sh
//! cargo run --release --example shuffle_diagnostics
//! ```
//!
//! For each strategy, prints the per-window label mix of one epoch's
//! stream over a 1 000-tuple table whose first half is negative: `-` for
//! an all-negative window, `+` for all-positive, digits for mixed.

use corgipile::data::{DataKind, DatasetSpec, Order};
use corgipile::shuffle::{
    build_strategy, label_distribution, order_displacement, StrategyKind, StrategyParams,
};
use corgipile::storage::SimDevice;

fn main() {
    let spec = DatasetSpec::new(
        "toy",
        DataKind::DenseBinary {
            dim: 90,
            separation: 1.0,
            noise_rank: 0,
        },
        1_000,
    )
    .with_order(Order::ClusteredByLabel)
    .with_block_bytes(8 << 10);
    let table = spec.build_table(4).expect("table builds");
    println!(
        "1000 clustered tuples in {} blocks; windows of 25 tuples:\n",
        table.num_blocks()
    );
    println!("legend: '-' all negative, '+' all positive, 1-9 = #positives/2.5 in window\n");

    for kind in [
        StrategyKind::NoShuffle,
        StrategyKind::SlidingWindow,
        StrategyKind::Mrs,
        StrategyKind::BlockOnly,
        StrategyKind::CorgiPile,
        StrategyKind::EpochShuffle,
    ] {
        let mut strategy =
            build_strategy(kind, StrategyParams::default().with_buffer_fraction(0.1));
        let mut dev = SimDevice::in_memory();
        let plan = strategy.next_epoch(&table, &mut dev);
        let labels = plan.label_sequence();
        let line: String = label_distribution(&labels, 25)
            .iter()
            .map(|w| {
                let total = w.positive + w.negative;
                if total == 0 {
                    ' '
                } else if w.positive == 0 {
                    '-'
                } else if w.negative == 0 {
                    '+'
                } else {
                    char::from_digit(((w.positive * 9) / total).clamp(1, 9) as u32, 10).unwrap()
                }
            })
            .collect();
        println!(
            "{:<24} |{line}|  displacement {:.3}",
            kind.display(),
            order_displacement(&plan.id_sequence())
        );
    }
    println!("\nA full shuffle shows uniform mid digits; CorgiPile gets close with a 10% buffer,");
    println!("while No Shuffle / Sliding-Window / MRS keep negatives before positives (Fig. 3/4).");
}
