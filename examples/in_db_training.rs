//! In-database training through the SQL surface (§6).
//!
//! ```sh
//! cargo run --release --example in_db_training
//! ```
//!
//! Opens a session over a simulated SSD, registers a clustered table, and
//! issues the paper's query shapes:
//!
//! ```sql
//! SELECT * FROM forest TRAIN BY svm WITH learning_rate = 0.03, ...
//! SELECT * FROM forest PREDICT BY forest_model
//! ```
//!
//! comparing the `corgipile`, `once`, `block_only` and `no` physical plans.

use corgipile::data::{DatasetSpec, Order};
use corgipile::db::{Database, QueryResult};
use corgipile::storage::SimDevice;

fn main() {
    let table = DatasetSpec::susy_like(12_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(3)
        .expect("table builds");
    let cache = table.total_bytes() * 3;
    let mut session = Database::new(SimDevice::ssd_scaled(1280.0, cache)).connect();
    session.register_table("forest", table);

    println!(
        "{:<12} {:>10} {:>12} {:>12}",
        "strategy", "train acc", "setup", "total"
    );
    for strategy in ["corgipile", "once", "block_only", "no"] {
        let sql = format!(
            "SELECT * FROM forest TRAIN BY svm WITH learning_rate = 0.03, decay = 0.8, \
             max_epoch_num = 8, buffer_fraction = 0.1, strategy = '{strategy}', \
             model_name = m_{strategy}"
        );
        match session.execute(&sql).expect("query runs") {
            QueryResult::Train(t) => println!(
                "{:<12} {:>9.1}% {:>11.2}ms {:>11.2}ms",
                strategy,
                t.final_train_metric * 100.0,
                t.setup_seconds * 1e3,
                t.total_seconds() * 1e3,
            ),
            _ => unreachable!(),
        }
    }

    // Inference with the stored CorgiPile model.
    match session
        .execute("SELECT * FROM forest PREDICT BY m_corgipile")
        .expect("predict runs")
    {
        QueryResult::Predict {
            predictions,
            metric,
        } => {
            println!(
                "\nPREDICT BY m_corgipile → {} predictions, accuracy {:.1}%",
                predictions.len(),
                metric * 100.0
            );
        }
        _ => unreachable!(),
    }
    println!(
        "\ncatalog now holds models: {:?}",
        session.catalog().model_names()
    );
}
