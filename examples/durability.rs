//! Durable training: WAL-backed model store, simulated crash, recovery.
//!
//! ```sh
//! cargo run --release --example durability
//! ```
//!
//! 1. train with `WITH durable = 1` on an engine that was opened over a
//!    model store directory — every epoch appends a CRC-framed,
//!    fsynced checkpoint record to the `CORGIWL1` log;
//! 2. kill the run with an injected crash point on the WAL write path;
//! 3. reopen the directory as a fresh process would: recovery scans the
//!    longest valid log prefix and registers the last durable version;
//! 4. re-issue the *same* query — it auto-resumes from the last durable
//!    epoch and finishes with a bit-identical model, no checkpoint knobs.

use corgipile::data::{DatasetSpec, Order};
use corgipile::db::{Database, DbError, ModelStoreOptions, QueryResult};
use corgipile::storage::{sites, FaultPlan, SimDevice, StorageError};

const TRAIN: &str = "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.05, \
                     max_epoch_num = 6, seed = 42, model_name = higgs_svm, durable = 1";

fn main() {
    let table = DatasetSpec::higgs_like(4_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8192)
        .build_table(1)
        .unwrap();
    let dir = std::env::temp_dir().join(format!("corgipile_durability_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Reference: the same query on an uninterrupted engine.
    let reference = {
        let ref_dir = dir.join("reference");
        let db = Database::with_model_store(SimDevice::hdd_scaled(1000.0, 0), 0, &ref_dir)
            .expect("open reference engine");
        db.register_table("higgs", table.clone());
        db.connect().execute(TRAIN).expect("reference train");
        db.catalog().model("higgs_svm").unwrap().params.clone()
    };

    // 1.+2. Durable training, killed after the 3rd epoch's fsync.
    let store = dir.join("store");
    let opts = ModelStoreOptions {
        faults: Some(FaultPlan::new(42).with_crash_point(sites::WAL_AFTER_FSYNC, 3)),
        ..Default::default()
    };
    {
        let db = Database::with_model_store_opts(SimDevice::hdd_scaled(1000.0, 0), 0, &store, opts)
            .expect("open faulty engine");
        db.register_table("higgs", table.clone());
        match db.connect().execute(TRAIN) {
            Err(DbError::Storage(StorageError::Crashed { site })) => {
                println!("simulated kill at write site '{site}' (3 epochs durable)");
            }
            other => panic!("expected the injected crash, got {other:?}"),
        }
    } // engine dropped: the "process" is gone, only the WAL survives.

    // 3. A clean process reopens the same directory.
    let db = Database::with_model_store(SimDevice::hdd_scaled(1000.0, 0), 0, &store)
        .expect("recover engine");
    db.register_table("higgs", table);
    let stats = db.model_store().unwrap().stats();
    println!(
        "recovered: {} record(s) from a {}-byte WAL ({} torn tail bytes discarded)",
        stats.recovered_records, stats.wal_len_bytes, stats.torn_tail_bytes
    );
    let mut session = db.connect();
    if let QueryResult::Names(models) = session.execute("SHOW MODELS").expect("show models") {
        for m in &models {
            println!("  SHOW MODELS -> {m}");
        }
    }

    // 4. Same query again: auto-resume from the last durable epoch.
    match session.execute(TRAIN).expect("resume train") {
        QueryResult::Train(t) => println!(
            "resumed '{}' for {} remaining epoch(s), accuracy {:.1}%",
            t.model_name,
            t.epochs.len(),
            t.final_train_metric * 100.0
        ),
        _ => unreachable!(),
    }
    let resumed = db.catalog().model("higgs_svm").unwrap().params.clone();
    assert_eq!(resumed, reference);
    println!("resumed model is bit-identical to the uninterrupted run");

    // LOAD MODEL re-registers the durable version into any session.
    if let QueryResult::Names(lines) = session.execute("LOAD MODEL higgs_svm").expect("load model")
    {
        println!("  LOAD MODEL -> {}", lines[0]);
    }
    let stats = db.model_store().unwrap().stats();
    println!(
        "WAL after resume: {} append(s), {} fsync(s), {} compaction(s), {} bytes",
        stats.appends, stats.fsyncs, stats.compactions, stats.wal_len_bytes
    );

    std::fs::remove_dir_all(&dir).ok();
}
