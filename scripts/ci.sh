#!/usr/bin/env bash
# Local CI gate: build, test, format, lint. Run from the repo root.
# Mirrored by .github/workflows/ci.yml — keep the steps in sync.
set -euo pipefail
cd "$(dirname "$0")/.."

banner() { printf '\n==== %s ====\n' "$1"; }

banner "Build (release)"
cargo build --release

banner "Test"
cargo test -q

banner "Format check"
cargo fmt --check

banner "Clippy"
cargo clippy --workspace -- -D warnings

banner "CI gate passed"
