#!/usr/bin/env bash
# Local CI gate: build, test, format, lint. Run from the repo root.
# Mirrored by .github/workflows/ci.yml — keep the steps in sync.
set -euo pipefail
cd "$(dirname "$0")/.."

banner() { printf '\n==== %s ====\n' "$1"; }

banner "Build (release)"
cargo build --release

banner "Test"
cargo test -q

banner "Format check"
cargo fmt --check

banner "Clippy"
cargo clippy --workspace -- -D warnings

banner "Docs (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

banner "Concurrency stress (N sessions over one engine, bit-identical)"
cargo test --release --test concurrent_sessions

banner "Crash matrix (kill at every WAL write site, recover, bit-identical)"
cargo test --release --test crash_recovery

banner "Pipeline bench (smoke scale)"
# Completes-and-emits-valid-JSON check only — no performance gating in CI.
CORGI_PIPELINE_TUPLES=1500 CORGI_PIPELINE_EPOCHS=2 \
  cargo run --release -p corgipile-bench --bin corgi-bench -- pipeline
python3 -c "import json; json.load(open('BENCH_pipeline.json'))" \
  || { echo "BENCH_pipeline.json is not valid JSON"; exit 1; }

banner "Concurrency bench (smoke scale)"
CORGI_CONCURRENCY_TUPLES=2000 CORGI_CONCURRENCY_EPOCHS=1 \
  cargo run --release -p corgipile-bench --bin corgi-bench -- concurrency
python3 -c "import json; json.load(open('BENCH_concurrency.json'))" \
  || { echo "BENCH_concurrency.json is not valid JSON"; exit 1; }

banner "Pushdown bench (smoke scale)"
CORGI_PUSHDOWN_TUPLES=2000 CORGI_PUSHDOWN_EPOCHS=1 \
  cargo run --release -p corgipile-bench --bin corgi-bench -- pushdown
python3 -c "import json; json.load(open('BENCH_pushdown.json'))" \
  || { echo "BENCH_pushdown.json is not valid JSON"; exit 1; }

banner "Recovery bench (smoke scale)"
CORGI_RECOVERY_TUPLES=2000 CORGI_RECOVERY_EPOCHS=2 \
  cargo run --release -p corgipile-bench --bin corgi-bench -- recovery
python3 -c "import json; json.load(open('BENCH_recovery.json'))" \
  || { echo "BENCH_recovery.json is not valid JSON"; exit 1; }

banner "Serving hot-reload (predictors racing durable trains, bit-identical)"
cargo test --release --test serving_hot_reload

banner "Serving bench (smoke scale)"
CORGI_SERVING_TUPLES=2000 CORGI_SERVING_RUNS=1 CORGI_SERVING_BATCH_ROWS=128 \
  cargo run --release -p corgipile-bench --bin corgi-bench -- serving
python3 -c "
import json
d = json.load(open('BENCH_serving.json'))
assert all(s['predictions_per_sec'] > 0 for s in d['sessions']), d['sessions']
assert d['bit_identical_all'], 'concurrent serving diverged from the serial reference'
" || { echo "BENCH_serving.json failed the serving gate"; exit 1; }

banner "Vectorize bench (smoke scale)"
# Gated: the fused pipeline must beat the interpreted tree by >= 1.3x
# simulated compute on every grid cell and stay bit-identical.
CORGI_VECTORIZE_TUPLES=2000 CORGI_VECTORIZE_EPOCHS=1 \
  cargo run --release -p corgipile-bench --bin corgi-bench -- vectorize
python3 -c "
import json
d = json.load(open('BENCH_vectorize.json'))
assert d['speedup'] >= 1.3, f\"fused speedup {d['speedup']} < 1.3x\"
assert d['bit_identical_all'], 'fused pipeline diverged from the interpreted oracle'
" || { echo "BENCH_vectorize.json failed the vectorize gate"; exit 1; }

banner "Planner bench (smoke scale)"
# Gated: the cost-based chooser must move off plain CorgiPile on
# clustered data, keep it on pre-shuffled data, and the bounded
# RECLUSTER pass must stay within its declared io_budget. The
# convergence-frontier check is only meaningful at full bench scale.
CORGI_PLANNER_TUPLES=2000 CORGI_PLANNER_EPOCHS=20 \
  cargo run --release -p corgipile-bench --bin corgi-bench -- planner
python3 -c "
import json
d = json.load(open('BENCH_planner.json'))
assert d['choice_clustered'] in ('corgi2', 'block_reversal'), d['choice_clustered']
assert d['choice_shuffled'] == 'corgipile', d['choice_shuffled']
assert d['recluster_within_budget'], d
" || { echo "BENCH_planner.json failed the planner gate"; exit 1; }

banner "Ingest + continuous training (concurrent INSERT/TRAIN, table-WAL crash matrix)"
cargo test --release --test ingest_train

banner "Ingest bench (smoke scale)"
# Gated: TRAIN … CONTINUOUS must reach the retrain-from-scratch arm's
# final loss with measurably less device I/O on the same drift schedule,
# and the continuous rerun must stay bit-identical.
CORGI_INGEST_TUPLES=2000 CORGI_INGEST_EPOCHS=3 CORGI_INGEST_ROWS=2000 CORGI_INGEST_BATCH=100 \
  cargo run --release -p corgipile-bench --bin corgi-bench -- ingest
python3 -c "
import json
d = json.load(open('BENCH_ingest.json'))
assert d['drift']['continuous_io_bytes'] < d['drift']['retrain_io_bytes'], d['drift']
assert d['continuous_reaches_target'], d['drift']
assert d['bit_identical_all'], 'continuous rerun diverged'
" || { echo "BENCH_ingest.json failed the ingest gate"; exit 1; }

banner "CI gate passed"
