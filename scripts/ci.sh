#!/usr/bin/env bash
# Local CI gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace -- -D warnings
