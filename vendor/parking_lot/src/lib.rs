//! Hermetic vendored subset of the `parking_lot` 0.12 API.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice it uses: [`Mutex`] and [`RwLock`] with parking_lot's
//! non-poisoning `lock()` / `read()` / `write()` signatures, implemented
//! over the std primitives (a poisoned std lock is recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics).

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock must recover after a panicked holder");
    }
}
