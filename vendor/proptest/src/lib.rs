//! Hermetic vendored subset of the `proptest` API.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro over named
//! `pattern in strategy` arguments, range / [`Just`] / [`prop_oneof!`] /
//! [`collection::vec`] / tuple strategies, `any::<T>()` for primitives,
//! and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberate for a hermetic test
//! dependency:
//!
//! * **No shrinking.** A failing case reports the seed and inputs via the
//!   panic message (every strategy here is `Debug`-printable through the
//!   generated binding names) but is not minimized.
//! * **Deterministic seeding.** Case `i` of test `f` derives its RNG seed
//!   from `(name_hash(f), i)`, so failures reproduce exactly and CI runs
//!   are stable — there is no `PROPTEST_` environment handling.
//! * `prop_assert!` / `prop_assert_eq!` panic immediately (they are the
//!   std asserts), rather than returning `TestCaseError`.

pub mod test_runner {
    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` sampled cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real crate's default; the workspace's proptests either
            // accept it or override with `with_cases`.
            Config { cases: 256 }
        }
    }
}

pub mod rng {
    /// The deterministic generator behind every strategy sample:
    /// xoshiro256++ seeded via SplitMix64 from `(test-name hash, case)`.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Generator for one (test, case) pair.
        pub fn for_case(name_hash: u64, case: u64) -> Self {
            let mut sm = name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Next 64 random bits (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, span)`; `span == 0` means the full
        /// `u64` domain.
        pub fn below(&mut self, span: u64) -> u64 {
            if span == 0 {
                self.next_u64()
            } else {
                ((self.next_u64() as u128 * span as u128) >> 64) as u64
            }
        }

        /// Uniform draw from `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a of a test name, for per-test seed separation.
    pub fn name_hash(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    use crate::rng::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for sampling values of one type.
    pub trait Strategy {
        /// The type of the sampled values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let v = self.start
                        + (self.end - self.start) * rng.unit_f64() as $t;
                    if v < self.end { v } else { self.start }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

    /// A uniform choice among boxed strategies of one value type (what
    /// [`crate::prop_oneof!`] builds).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over the given arms (must be non-empty).
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Erase a strategy's concrete type (used by [`crate::prop_oneof!`]
    /// so arm types unify through the vector element type).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only, spread over a wide dynamic range.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.unit_f64() - 0.5) * 2e6) as f32
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for vectors of element samples (built by [`vec`]).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Immediate-panic form of proptest's `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Immediate-panic form of proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Immediate-panic form of proptest's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let mut arms = Vec::new();
        $(arms.push($crate::strategy::boxed($arm));)+
        $crate::strategy::Union::new(arms)
    }};
}

/// Define `#[test]` functions whose arguments are sampled from
/// strategies. Each function runs `config.cases` deterministic cases; a
/// failure panics with the offending case index in the standard panic
/// location info.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr)) => {};
    (@expand ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let name_hash = $crate::rng::name_hash(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut proptest_rng = $crate::rng::TestRng::for_case(name_hash, case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut proptest_rng);)+
                $body
            }
        }
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::rng::TestRng;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..1000 {
            let a = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&a));
            let b = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&b));
            let c = Just(41i32).sample(&mut rng);
            assert_eq!(c, 41);
            let (x, y) = ((0u64..8), (1usize..4)).sample(&mut rng);
            assert!(x < 8 && (1..4).contains(&y));
            let v = crate::collection::vec(-1.0f32..1.0, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|e| (-1.0..1.0).contains(e)));
            let u = prop_oneof![Just(1usize), Just(32), Just(100)].sample(&mut rng);
            assert!([1, 32, 100].contains(&u));
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let draw = |case| {
            let mut rng = TestRng::for_case(crate::rng::name_hash("x"), case);
            (0u64..1_000_000).sample(&mut rng)
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires config, metas, and multi-arg sampling.
        #[test]
        fn macro_generates_running_tests(
            n in 1usize..50,
            scale in prop_oneof![Just(1.0f64), Just(2.0)],
            seed in any::<u64>(),
        ) {
            prop_assert!(n >= 1 && n < 50);
            prop_assert!(scale == 1.0 || scale == 2.0);
            let _ = seed;
            prop_assert_eq!(n + 1, 1 + n);
            prop_assert_ne!(n, n + 1);
        }
    }
}
