//! Hermetic vendored subset of the `criterion` 0.5 API.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of criterion its `benches/` targets use: `criterion_group!` /
//! `criterion_main!`, benchmark groups with throughput annotations,
//! `bench_function` / `bench_with_input`, and a timing loop. Instead of
//! criterion's statistical engine, each benchmark is calibrated to ~0.2 s
//! of wall time and reports the mean iteration time — enough to compare
//! kernels locally; not a statistics suite.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the computation behind
/// it (best-effort volatile read, like `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (printed with results).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure of every benchmark; drives the timing loop.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Time `f`, first calibrating an iteration count for ~0.2 s of
    /// wall time, then measuring the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate.
        let mut n = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(20) || n >= 1 << 30 {
                let target = Duration::from_millis(200).as_nanos() as f64;
                let scale = (target / dt.as_nanos().max(1) as f64).clamp(1.0, 1e6);
                n = ((n as f64) * scale) as u64;
                break;
            }
            n *= 4;
        }
        // Measure.
        let t0 = Instant::now();
        for _ in 0..n.max(1) {
            black_box(f());
        }
        self.mean_ns = t0.elapsed().as_nanos() as f64 / n.max(1) as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Ignored (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    fn report(&self, id: &str, mean_ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.1} Melem/s", n as f64 / mean_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.1} MiB/s", n as f64 / mean_ns * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!("bench {:<40} {:>12.1} ns/iter{rate}", format!("{}/{id}", self.name), mean_ns);
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        self.report(&id.to_string(), b.mean_ns);
        self
    }

    /// Run one benchmark receiving a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b, input);
        self.report(&id.to_string(), b.mean_ns);
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        println!("bench {name:<40} {:>12.1} ns/iter", b.mean_ns);
        self
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
    }
}
