//! Hermetic vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so the workspace vendors
//! the thin slice of `rand` it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`]), [`Rng::gen`] for unit floats, and
//! [`Rng::gen_range`] over integer and float ranges. The generator is
//! xoshiro256++ seeded via SplitMix64 — high-quality, fast, and (most
//! importantly here) bit-reproducible from a `u64` seed on every platform.
//!
//! This is NOT a drop-in replacement for the real crate: streams differ
//! from upstream `StdRng` (ChaCha12). Every consumer in this workspace
//! derives its expectations from the same generator, so only internal
//! consistency matters.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from its standard distribution (`f32`/`f64`:
    /// uniform in `[0, 1)`; integers: uniform over the full domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Sample `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// `span` values in (0, 2^64]; 0 encodes the full 2^64-wide domain.
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Widening-multiply range reduction; bias is < span / 2^64 and
    // irrelevant for a simulator that only needs determinism.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64; // 0 == full u64 domain
                (lo as i128 + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample_standard(rng); // [0, 1)
                let v = self.start + (self.end - self.start) * unit;
                // Guard the upper bound against rounding in the lerp.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
range_float!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state (the standard recommendation for xoshiro seeding).
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.gen_range(0u64..1_000_000)).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=0);
            assert_eq!(w, 0);
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..100)
        }
        let mut r = StdRng::seed_from_u64(1);
        assert!(draw(&mut r) < 100);
    }
}
