//! Hermetic vendored subset of the `crossbeam` 0.8 API.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of crossbeam it uses: [`thread::scope`] (bridged onto
//! `std::thread::scope`, which has been stable since Rust 1.63),
//! [`channel::bounded`] (bridged onto `std::sync::mpsc::sync_channel`),
//! and [`deque`] (a mutex-based implementation of the `Injector` /
//! `Worker` / `Stealer` work-stealing interface).
//!
//! The deques favour simplicity over lock-freedom: every queue is a
//! `Mutex<VecDeque>`. For this workspace's workloads — task granularity of
//! whole storage blocks or gradient chunks — queue transfer cost is noise
//! next to the work items themselves.

/// Scoped threads with the crossbeam calling convention (the closure and
/// each spawn receive a `&Scope` handle usable for nested spawns).
pub mod thread {
    /// Result alias matching `std::thread::Result`.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; spawned threads may borrow from the enclosing
    /// stack frame and are all joined before `scope` returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// handle again so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// threads are joined before this returns. A panic in an unjoined
    /// spawned thread propagates as a panic (the crossbeam version returns
    /// it as `Err`; every caller in this workspace unwraps immediately, so
    /// the observable behaviour is identical).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Bounded multi-producer channels.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Block until the value is accepted; `Err` when disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block for the next value; `Err` when empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// The channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a non-blocking receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No value ready.
        Empty,
        /// All senders dropped.
        Disconnected,
    }

    /// The receiver was dropped; the unsent value is returned.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// A channel holding at most `cap` in-flight values (`cap == 0` is a
    /// rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

/// Work-stealing deques: one [`deque::Worker`] per executor thread, a
/// global [`deque::Injector`] for submission, and cloneable
/// [`deque::Stealer`]s for idle threads to take work from the back of
/// other workers' queues.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, MutexGuard};

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried. (The mutex-based
        /// queues never race, but callers written against the lock-free
        /// interface loop on this variant, so it is kept.)
        Retry,
    }

    impl<T> Steal<T> {
        /// Whether the attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A worker-owned queue; the owner pushes and pops the front, stealers
    /// take from the back.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A FIFO worker queue (tasks pop in push order).
        pub fn new_fifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Push a task onto the owner's end.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Pop the next task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            lock(&self.queue).pop_front()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// A handle other threads can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: self.queue.clone() }
        }
    }

    /// A handle for stealing from another thread's [`Worker`].
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { queue: self.queue.clone() }
        }
    }

    impl<T> Stealer<T> {
        /// Steal one task from the victim's back end.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// A global FIFO submission queue shared by all executor threads.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        /// Submit a task.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Take one task.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Move a batch of tasks into `dest` and return one of them.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = lock(&self.queue);
            match q.pop_front() {
                None => Steal::Empty,
                Some(first) => {
                    // Migrate up to half of the backlog, like the lock-free
                    // original, so subsequent pops stay local.
                    let batch = q.len() / 2;
                    let mut dq = lock(&dest.queue);
                    for _ in 0..batch {
                        match q.pop_front() {
                            Some(t) => dq.push_back(t),
                            None => break,
                        }
                    }
                    Steal::Success(first)
                }
            }
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn worker_fifo_and_stealer_lifo_ends() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal(), Steal::Success(3), "stealers take the back");
            assert_eq!(w.pop(), Some(1), "owner pops the front");
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert_eq!(s.steal(), Steal::Empty);
        }

        #[test]
        fn injector_batch_migrates_work() {
            let inj = Injector::new();
            let w = Worker::new_fifo();
            for i in 0..10 {
                inj.push(i);
            }
            assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
            assert!(!w.is_empty(), "a batch must land in the worker");
            let mut seen = vec![0];
            while let Some(t) = w.pop() {
                seen.push(t);
            }
            while let Steal::Success(t) = inj.steal() {
                seen.push(t);
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn concurrent_stealing_loses_nothing() {
            let inj = std::sync::Arc::new(Injector::new());
            let n = 10_000u64;
            for i in 0..n {
                inj.push(i);
            }
            let total: u64 = std::thread::scope(|sc| {
                (0..4)
                    .map(|_| {
                        let inj = inj.clone();
                        sc.spawn(move || {
                            let w = Worker::new_fifo();
                            let mut sum = 0u64;
                            loop {
                                match inj.steal_batch_and_pop(&w) {
                                    Steal::Success(t) => sum += t,
                                    Steal::Empty => break,
                                    Steal::Retry => continue,
                                }
                                while let Some(t) = w.pop() {
                                    sum += t;
                                }
                            }
                            sum
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            assert_eq!(total, n * (n - 1) / 2);
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sum: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..data.len()).map(|i| scope.spawn(move |_| data[i] * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 100);
    }

    #[test]
    fn bounded_channel_roundtrip_and_disconnect() {
        let (tx, rx) = crate::channel::bounded::<u32>(1);
        let h = std::thread::spawn(move || {
            for i in 0..5 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..5).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        h.join().unwrap();
        assert!(rx.recv().is_err(), "disconnect after sender drops");
    }
}
