//! Cross-crate integration: the paper's headline convergence claims,
//! exercised through the full stack (data → storage → shuffle → ml → core).

use corgipile::core::{CorgiPileConfig, Trainer, TrainerConfig};
use corgipile::data::{DatasetSpec, Order};
use corgipile::ml::{ModelKind, OptimizerKind};
use corgipile::shuffle::StrategyKind;
use corgipile::storage::SimDevice;

fn clustered_higgs() -> (corgipile::storage::Table, Vec<corgipile::storage::Tuple>) {
    let ds = DatasetSpec::higgs_like(12_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build(101);
    (ds.to_table(1).unwrap(), ds.test)
}

fn run(
    table: &corgipile::storage::Table,
    test: &[corgipile::storage::Tuple],
    strategy: StrategyKind,
    epochs: usize,
) -> corgipile::core::TrainReport {
    let cfg = TrainerConfig::new(ModelKind::Svm, epochs)
        .with_strategy(strategy)
        .with_optimizer(OptimizerKind::Sgd {
            lr0: 0.03,
            decay: 0.8,
        });
    let mut dev = SimDevice::hdd_scaled(1280.0, table.total_bytes() * 3);
    Trainer::new(cfg)
        .train_with_test(table, test, &mut dev, 5)
        .unwrap()
}

fn tail(r: &corgipile::core::TrainReport) -> f64 {
    let vals: Vec<f64> = r
        .epochs
        .iter()
        .rev()
        .take(4)
        .filter_map(|e| e.test_metric)
        .collect();
    vals.iter().sum::<f64>() / vals.len() as f64
}

#[test]
fn corgipile_matches_shuffle_once_within_noise() {
    let (table, test) = clustered_higgs();
    let so = tail(&run(&table, &test, StrategyKind::ShuffleOnce, 8));
    let cp = tail(&run(&table, &test, StrategyKind::CorgiPile, 8));
    assert!(
        (so - cp).abs() < 0.04,
        "CorgiPile {cp:.3} vs Shuffle Once {so:.3}: gap too wide"
    );
}

#[test]
fn no_shuffle_and_window_strategies_fail_on_clustered_data() {
    let (table, test) = clustered_higgs();
    let so = tail(&run(&table, &test, StrategyKind::ShuffleOnce, 6));
    for weak in [StrategyKind::NoShuffle, StrategyKind::SlidingWindow] {
        let acc = tail(&run(&table, &test, weak, 6));
        assert!(
            acc < so - 0.08,
            "{weak}: {acc:.3} should be clearly below Shuffle Once {so:.3}"
        );
    }
}

#[test]
fn corgipile_end_to_end_time_beats_shuffle_once_clearly() {
    let (table, test) = clustered_higgs();
    let so = run(&table, &test, StrategyKind::ShuffleOnce, 6).total_sim_seconds();
    let cp = run(&table, &test, StrategyKind::CorgiPile, 6).total_sim_seconds();
    assert!(
        so / cp > 1.5,
        "expected ≥1.5x end-to-end speedup (paper: 1.6-12.8x), got {:.2}x",
        so / cp
    );
}

#[test]
fn all_strategies_converge_identically_on_pre_shuffled_data() {
    // Figure 2's right-hand panels: with i.i.d. storage order, even No
    // Shuffle is fine — the pathology is strictly about clustered layouts.
    let ds = DatasetSpec::higgs_like(8_000)
        .with_order(Order::Shuffled)
        .with_block_bytes(8 << 10)
        .build(103);
    let table = ds.to_table(2).unwrap();
    let so = tail(&run(&table, &ds.test, StrategyKind::ShuffleOnce, 6));
    let ns = tail(&run(&table, &ds.test, StrategyKind::NoShuffle, 6));
    assert!(
        (so - ns).abs() < 0.04,
        "on shuffled data No Shuffle {ns:.3} should match Shuffle Once {so:.3}"
    );
}

#[test]
fn small_buffers_still_converge() {
    // Figure 14a: a 2% buffer matches Shuffle Once's final accuracy.
    let ds = DatasetSpec::criteo_like(12_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(16 << 10)
        .build(104);
    let table = ds.to_table(3).unwrap();
    let so = tail(&run(&table, &ds.test, StrategyKind::ShuffleOnce, 6));
    let cfg = TrainerConfig::new(ModelKind::Svm, 6)
        .with_strategy(StrategyKind::CorgiPile)
        .with_optimizer(OptimizerKind::Sgd {
            lr0: 0.03,
            decay: 0.8,
        })
        .with_corgipile(CorgiPileConfig::default().with_buffer_fraction(0.02));
    let mut dev = SimDevice::hdd_scaled(640.0, 0);
    let r = Trainer::new(cfg)
        .train_with_test(&table, &ds.test, &mut dev, 5)
        .unwrap();
    let cp = tail(&r);
    assert!(
        cp > so - 0.05,
        "2% buffer CorgiPile {cp:.3} should approach Shuffle Once {so:.3}"
    );
}

#[test]
fn wide_normalized_data_shows_the_same_story() {
    // epsilon-like: 2000-dim unit-normalized rows with correlated noise.
    let ds = DatasetSpec::epsilon_like(800)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(128 << 10)
        .build(106);
    let table = ds.to_table(4).unwrap();
    let lr = OptimizerKind::Sgd {
        lr0: 4.0,
        decay: 0.8,
    };
    let runw = |strategy: StrategyKind| {
        let cfg = TrainerConfig::new(ModelKind::LogisticRegression, 12)
            .with_strategy(strategy)
            .with_optimizer(lr);
        let mut dev = SimDevice::ssd_scaled(80.0, 0);
        let r = Trainer::new(cfg)
            .train_with_test(&table, &ds.test, &mut dev, 5)
            .unwrap();
        tail(&r)
    };
    let so = runw(StrategyKind::ShuffleOnce);
    let cp = runw(StrategyKind::CorgiPile);
    let ns = runw(StrategyKind::NoShuffle);
    assert!(
        so > 0.8,
        "epsilon-like should be ~90% learnable, SO {so:.3}"
    );
    assert!((so - cp).abs() < 0.06, "CP {cp:.3} vs SO {so:.3}");
    assert!(ns < so - 0.2, "No Shuffle {ns:.3} must collapse vs {so:.3}");
}
