//! Serving under mid-traffic hot-reload.
//!
//! The serving cache's contract is that a `PREDICT` run pins one immutable
//! model version before its first block is read, and nothing that happens
//! afterwards — most importantly a concurrent `TRAIN … durable = 1`
//! publishing a newer version — can change that run's predictions. These
//! tests race N predictor sessions against a trainer that hot-reloads the
//! model several times, and require every batch's predictions to be
//! bit-identical to its pinned version's post-hoc reference (no torn
//! reads, no mixed-version batches).

use corgipile::data::{DatasetSpec, Order};
use corgipile::db::{Database, QueryResult};
use corgipile::storage::{SimDevice, Table};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const ROWS: usize = 2000;
const PREDICTORS: usize = 4;
const RELOADS: u32 = 4; // versions 2..=5 published mid-traffic

fn higgs(n: usize) -> Table {
    DatasetSpec::higgs_like(n)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8192)
        .build_table(1)
        .unwrap()
}

fn train_sql(seed: u32) -> String {
    // Distinct seeds per version: every reload publishes a genuinely
    // different model, so a torn read would change the predictions.
    format!(
        "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.05, \
         max_epoch_num = 2, seed = {seed}, model_name = m, durable = 1"
    )
}

#[test]
fn concurrent_predictions_stay_bit_identical_to_their_pinned_version() {
    let dir = std::env::temp_dir().join(format!("corgi_serve_reload_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let db = Database::with_model_store(SimDevice::hdd_scaled(1000.0, 0), 64 << 20, &dir).unwrap();
    db.register_table("higgs", higgs(ROWS));

    // Version 1 exists before traffic starts.
    db.connect().execute(&train_sql(1)).unwrap();

    let done = AtomicBool::new(false);
    // (version, predictions) for every serve run of every predictor.
    let observed: Vec<Vec<(u32, Vec<f32>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..PREDICTORS)
            .map(|_| {
                let db = Arc::clone(&db);
                let done = &done;
                scope.spawn(move || {
                    let mut s = db.connect();
                    let mut runs = Vec::new();
                    while !done.load(Ordering::Relaxed) || runs.is_empty() {
                        match s
                            .execute("PREDICT m ON higgs WITH batch_rows = 128")
                            .unwrap()
                        {
                            QueryResult::Serve(p) => {
                                assert_eq!(p.rows as usize, ROWS, "no partial scans");
                                assert_eq!(p.predictions.len(), ROWS);
                                runs.push((p.version, p.predictions));
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    runs
                })
            })
            .collect();

        // The trainer hot-reloads versions 2..=5 while traffic flows.
        let mut trainer = db.connect();
        for v in 2..=(1 + RELOADS) {
            trainer.execute(&train_sql(v)).unwrap();
        }
        done.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every finished training run was published: the last one is active.
    let cache = db.model_cache();
    assert_eq!(cache.active_version("m"), Some(1 + RELOADS));

    // Post-hoc references: one serial prediction per version, through the
    // explicit pin path.
    let mut reference: BTreeMap<u32, Vec<f32>> = BTreeMap::new();
    let mut s = db.connect();
    for v in 1..=(1 + RELOADS) {
        match s
            .execute(&format!(
                "PREDICT m VERSION {v} ON higgs WITH batch_rows = 128"
            ))
            .unwrap()
        {
            QueryResult::Serve(p) => {
                assert_eq!(p.version, v);
                reference.insert(v, p.predictions);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let distinct: Vec<&Vec<f32>> = reference.values().collect();
    for (i, a) in distinct.iter().enumerate() {
        for b in &distinct[i + 1..] {
            assert_ne!(a, b, "reload versions must be distinguishable models");
        }
    }

    // The core assertion: every racing run matches its pinned version's
    // reference bit for bit, and each session's pins only move forward.
    let mut total_runs = 0usize;
    for (tid, runs) in observed.iter().enumerate() {
        let mut last_version = 0u32;
        for (version, predictions) in runs {
            assert!(
                *version >= last_version,
                "thread {tid}: active version went backwards ({last_version} -> {version})"
            );
            last_version = *version;
            assert_eq!(
                predictions,
                reference.get(version).expect("version was published"),
                "thread {tid}: predictions diverged from pinned version {version}"
            );
            total_runs += 1;
        }
    }
    assert!(
        total_runs >= PREDICTORS,
        "every predictor ran at least once"
    );

    // The cache saw real traffic: pins on every serve, one publish per
    // training run plus the recovery-free baseline, no evictions of the
    // active version.
    let stats = cache.stats();
    assert!(stats.hits >= total_runs as u64);
    assert_eq!(stats.publishes, (1 + RELOADS) as u64);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_serves_the_recovered_version_warm() {
    let dir = std::env::temp_dir().join(format!("corgi_serve_restart_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let want = {
        let db = Database::with_model_store(SimDevice::hdd_scaled(1000.0, 0), 0, &dir).unwrap();
        db.register_table("higgs", higgs(500));
        let mut s = db.connect();
        s.execute(&train_sql(7)).unwrap();
        match s.execute("PREDICT m ON higgs").unwrap() {
            QueryResult::Serve(p) => p.predictions,
            other => panic!("unexpected {other:?}"),
        }
    };
    // Reopen over the same store: recovery republishes the model into the
    // serving cache, so the first PREDICT is a cache hit with the same
    // bits — no LOAD MODEL, no retrain.
    let db = Database::with_model_store(SimDevice::hdd_scaled(1000.0, 0), 0, &dir).unwrap();
    db.register_table("higgs", higgs(500));
    let mut s = db.connect();
    match s.execute("PREDICT m ON higgs").unwrap() {
        QueryResult::Serve(p) => {
            assert!(p.cache_hit, "recovery must pre-warm the serving cache");
            assert_eq!(p.version, 1);
            assert_eq!(p.predictions, want);
        }
        other => panic!("unexpected {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
