//! Concurrency stress: many sessions over one `Arc<Database>`.
//!
//! The engine/connection split's contract is that concurrency is purely a
//! scheduling concern — a trained model depends only on the tuple stream
//! (table contents + RNG seeds), never on device timing, cache residency,
//! or what other sessions are doing. These tests drive TRAIN / PREDICT /
//! EXPLAIN from many threads at once — one of them under an injected
//! fault plan — and require every model to be bit-identical to its serial
//! counterpart, at the SQL layer and at the physical-operator layer.

use corgipile::data::{DatasetSpec, Order};
use corgipile::db::{Database, QueryResult};
use corgipile::storage::{FaultPlan, SimDevice, Table};
use std::sync::Arc;

fn higgs(n: usize) -> Table {
    DatasetSpec::higgs_like(n)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8192)
        .build_table(1)
        .unwrap()
}

fn train_sql(seed: usize, name: &str) -> String {
    format!(
        "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.05, \
         max_epoch_num = 2, seed = {seed}, model_name = {name}"
    )
}

/// The serial counterpart: the same query on a private single-session
/// engine (no shared pool, nobody else on the device).
fn serial_params(table: &Table, seed: usize, fault: Option<FaultPlan>) -> Vec<f32> {
    let db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
    db.register_table("higgs", table.clone());
    let mut s = db.connect();
    if let Some(plan) = fault {
        s.inject_faults(plan);
    }
    s.execute(&train_sql(seed, "m")).unwrap();
    db.catalog().model("m").unwrap().params.clone()
}

#[test]
fn concurrent_sessions_match_their_serial_counterparts_bit_for_bit() {
    const SESSIONS: usize = 6;
    let table = higgs(2000);
    let table_id = table.config().table_id;
    let fault_plan = || {
        FaultPlan::new(77)
            .with_transient(table_id, 0, 2)
            .with_random_transient(0.05, 2)
    };

    // Serial references, one engine each.
    let want: Vec<Vec<f32>> = (0..SESSIONS)
        .map(|i| {
            let fault = (i == 0).then(fault_plan);
            serial_params(&table, i, fault)
        })
        .collect();

    // Concurrent run: every session on the same engine, same shared pool,
    // all threads training (plus EXPLAIN and PREDICT) at once. Session 0
    // carries the fault plan; its transients must stay invisible to the
    // others and to its own trained model.
    let db = Database::with_shared_buffers(SimDevice::hdd_scaled(1000.0, 0), 64 << 20);
    db.register_table("higgs", table.clone());
    std::thread::scope(|scope| {
        for i in 0..SESSIONS {
            let db = Arc::clone(&db);
            scope.spawn(move || {
                let mut s = db.connect();
                if i == 0 {
                    s.inject_faults(fault_plan());
                }
                match s
                    .execute("EXPLAIN SELECT * FROM higgs TRAIN BY svm")
                    .unwrap()
                {
                    QueryResult::Plan(lines) => assert!(!lines.is_empty()),
                    _ => panic!("expected a plan"),
                }
                let name = format!("m{i}");
                match s.execute(&train_sql(i, &name)).unwrap() {
                    QueryResult::Train(t) => {
                        assert!(t.skipped_blocks().is_empty(), "retries recover everything")
                    }
                    _ => panic!("expected a train result"),
                }
                // Inference scans have no retry path; lift the fault plan
                // first (through the handle, so it stays session-scoped).
                s.device_mut().clear_fault_injector();
                match s
                    .execute(&format!("SELECT * FROM higgs PREDICT BY {name}"))
                    .unwrap()
                {
                    QueryResult::Predict { predictions, .. } => {
                        assert_eq!(predictions.len(), 2000)
                    }
                    _ => panic!("expected predictions"),
                }
            });
        }
    });

    for (i, want) in want.iter().enumerate() {
        let got = db.catalog().model(&format!("m{i}")).unwrap().params.clone();
        assert_eq!(
            &got, want,
            "session {i} diverged from its serial counterpart under concurrency"
        );
    }
}

#[test]
fn shared_pool_cache_hit_rate_beats_cold_per_session_pools() {
    let table = higgs(2000);
    let sql = "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1, model_name = m";
    let rate = |hits: u64, misses: u64| -> f64 {
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    };

    // Cold: every session gets its own engine and its own pool, so each
    // one faults the whole table in from the device.
    let mut cold_hits = 0u64;
    let mut cold_misses = 0u64;
    for _ in 0..4 {
        let db = Database::with_shared_buffers(SimDevice::hdd_scaled(1000.0, 0), 64 << 20);
        db.register_table("higgs", table.clone());
        db.connect().execute(sql).unwrap();
        let stats = db.pool_stats();
        cold_hits += stats.hits;
        cold_misses += stats.misses;
    }

    // Shared: the same four single-epoch sessions over one engine. The
    // first faults the blocks in; the other three ride its cache.
    let db = Database::with_shared_buffers(SimDevice::hdd_scaled(1000.0, 0), 64 << 20);
    db.register_table("higgs", table.clone());
    for _ in 0..4 {
        db.connect().execute(sql).unwrap();
    }
    let stats = db.pool_stats();

    let cold_rate = rate(cold_hits, cold_misses);
    let shared_rate = rate(stats.hits, stats.misses);
    assert!(
        shared_rate > cold_rate,
        "shared pool hit rate {shared_rate:.3} must beat cold per-session pools \
         {cold_rate:.3}"
    );
    assert_eq!(cold_rate, 0.0, "single-epoch cold sessions never hit");
    assert!(
        shared_rate > 0.5,
        "three of four shared sessions run fully cached"
    );
}

#[test]
fn per_session_stats_sum_to_engine_totals_under_concurrency() {
    let table = higgs(1000);
    let db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
    db.register_table("higgs", table);
    let per_session: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    let mut s = db.connect();
                    s.execute(&train_sql(i, &format!("m{i}"))).unwrap();
                    s.device().stats().device_bytes
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(per_session.iter().all(|&b| b > 0));
    assert_eq!(
        db.device_stats().device_bytes,
        per_session.iter().sum::<u64>(),
        "engine-wide stats are the sum of the per-session handles"
    );
}

#[test]
fn operator_layer_concurrent_execution_is_bit_identical() {
    use corgipile::db::{BlockShuffleOp, ExecContext, ScanMode, SgdOperator, TupleShuffleOp};
    use corgipile::ml::{build_model, ComputeCostModel, ModelKind, OptimizerKind, TrainOptions};
    use corgipile::shuffle::StrategyParams;
    use corgipile::storage::{DeviceHandle, SharedDevice};

    let table = Arc::new(higgs(1500));
    let table_id = table.config().table_id;
    let run = |dev: &mut DeviceHandle, seed: u64| -> Vec<f32> {
        let params = StrategyParams::default()
            .with_buffer_fraction(0.2)
            .with_seed(seed);
        let child = Box::new(TupleShuffleOp::new(
            Box::new(BlockShuffleOp::new(
                table.clone(),
                ScanMode::RandomBlocks,
                seed,
            )),
            params.buffer_tuples(&table),
            params,
        ));
        let op = SgdOperator::new(
            child,
            build_model(&ModelKind::Svm, 28, seed),
            OptimizerKind::default_sgd(0.05).build(),
            TrainOptions::default(),
            ComputeCostModel::in_db_core(),
            2,
            true,
        );
        let mut ctx = ExecContext::new(dev);
        let result = op.execute(&mut ctx).expect("plan executes");
        result.model.params().to_vec()
    };

    // Serial references on private devices.
    let want: Vec<Vec<f32>> = (0..4u64)
        .map(|seed| {
            let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
            run(&mut dev, seed)
        })
        .collect();

    // The same four plans concurrently over one shared device, one of them
    // retrying through injected transient faults.
    let shared = SharedDevice::new(SimDevice::hdd_scaled(1000.0, 0));
    let got: Vec<Vec<f32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|seed| {
                let shared = &shared;
                let run = &run;
                scope.spawn(move || {
                    let mut dev = shared.handle();
                    if seed == 0 {
                        dev.set_fault_plan(
                            FaultPlan::new(5)
                                .with_transient(table_id, 1, 2)
                                .with_random_transient(0.03, 2),
                        );
                    }
                    run(&mut dev, seed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        got, want,
        "operator-layer plans diverged under shared-device concurrency"
    );
}
