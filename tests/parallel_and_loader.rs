//! Integration: multi-worker CorgiPile and the threaded loader against the
//! single-process reference.

use corgipile::core::{
    parallel_epoch_plan, train_parallel, CorgiPileConfig, CorgiPileDataset, ParallelConfig,
    ThreadedLoader, Trainer, TrainerConfig,
};
use corgipile::data::{DatasetSpec, Order};
use corgipile::ml::{accuracy, build_model, ModelKind, Optimizer, OptimizerKind, Sgd};
use corgipile::shuffle::{label_uniformity_score, order_displacement, StrategyKind};
use corgipile::storage::{SimDevice, Table};

fn clustered_cifar() -> (Table, Vec<corgipile::storage::Tuple>) {
    let ds = DatasetSpec::cifar_like(4_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build(7);
    (ds.to_table(1).unwrap(), ds.test)
}

#[test]
fn multi_worker_matches_single_process_accuracy() {
    let (table, test) = clustered_cifar();
    let kind = ModelKind::Mlp {
        hidden: vec![32],
        classes: 10,
    };

    // Single-process CorgiPile, batch 128.
    let cfg = TrainerConfig::new(kind.clone(), 6)
        .with_strategy(StrategyKind::CorgiPile)
        .with_batch_size(128)
        .with_optimizer(OptimizerKind::default_sgd(0.1));
    let mut dev = SimDevice::in_memory();
    let single = Trainer::new(cfg)
        .train_with_test(&table, &test, &mut dev, 3)
        .unwrap()
        .final_test_metric()
        .unwrap();

    // 4-worker DDP-style CorgiPile, same global batch.
    let pcfg = ParallelConfig {
        workers: 4,
        total_buffer_fraction: 0.10,
        batch_size: 128,
        seed: 3,
        ..Default::default()
    };
    let mut model = build_model(&kind, 128, 3);
    let mut opt = Sgd::new(0.1, 0.95);
    for e in 0..6 {
        opt.set_epoch(e);
        let plan = parallel_epoch_plan(&table, &pcfg, e);
        train_parallel(model.as_mut(), &mut opt, &plan.merged_batches, 4);
    }
    let multi = accuracy(model.as_ref(), &test);
    assert!(
        (single - multi).abs() < 0.08,
        "multi-worker {multi:.3} should track single-process {single:.3} (paper Fig. 5/7)"
    );
    assert!(multi > 0.5, "multi-worker must actually learn: {multi:.3}");
}

#[test]
fn multi_worker_order_is_statistically_equivalent_to_single() {
    let (table, _) = clustered_cifar();
    let pcfg = ParallelConfig {
        workers: 4,
        total_buffer_fraction: 0.2,
        batch_size: 100,
        seed: 5,
        ..Default::default()
    };
    let plan = parallel_epoch_plan(&table, &pcfg, 0);
    let merged: Vec<_> = plan.merged_batches.concat();
    let ids: Vec<u64> = merged.iter().map(|t| t.id).collect();
    let labels: Vec<f32> = merged.iter().map(|t| t.label).collect();

    let mut dataset = CorgiPileDataset::new(
        table.clone(),
        CorgiPileConfig::default()
            .with_buffer_fraction(0.2)
            .with_seed(5),
    );
    let mut dev = SimDevice::in_memory();
    let sp: Vec<_> = dataset.epoch_iter(&mut dev).collect();
    let sp_ids: Vec<u64> = sp.iter().map(|t| t.id).collect();
    let sp_labels: Vec<f32> = sp.iter().map(|t| t.label).collect();

    let d_multi = order_displacement(&ids);
    let d_single = order_displacement(&sp_ids);
    assert!(
        (d_multi - d_single).abs() < 0.08,
        "{d_multi:.3} vs {d_single:.3}"
    );
    // Label windows within 2x of each other's (small) nonuniformity.
    let u_multi = label_uniformity_score(&labels, 100);
    let u_single = label_uniformity_score(&sp_labels, 100);
    assert!(
        u_multi < 0.15 && u_single < 0.15,
        "{u_multi:.4} / {u_single:.4}"
    );
}

#[test]
fn threaded_loader_stream_equals_strategy_coverage() {
    let (table, _) = clustered_cifar();
    let n = table.num_tuples();
    let loader = ThreadedLoader::spawn(table, 8, 9);
    let mut ids: Vec<u64> = loader.map(|t| t.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..n).collect::<Vec<_>>());
}

#[test]
fn training_from_threaded_loader_learns() {
    let (table, test) = clustered_cifar();
    let kind = ModelKind::Mlp {
        hidden: vec![32],
        classes: 10,
    };
    let mut model = build_model(&kind, 128, 1);
    let mut opt = Sgd::new(0.1, 0.95);
    for epoch in 0..6 {
        opt.set_epoch(epoch);
        let loader = ThreadedLoader::spawn(table.clone(), 40, 1000 + epoch as u64);
        let tuples: Vec<_> = loader.collect();
        corgipile::ml::train_minibatch(
            model.as_mut(),
            &mut opt,
            tuples.iter(),
            &corgipile::ml::TrainOptions::minibatch(128),
        );
    }
    let acc = accuracy(model.as_ref(), &test);
    assert!(acc > 0.5, "loader-fed training should learn: {acc:.3}");
}
