//! Ingest-while-training end-to-end: `INSERT` appends through the
//! versioned block storage, `TRAIN` pins a snapshot and stays
//! bit-reproducible under concurrent writers, `TRAIN … CONTINUOUS`
//! re-pins at refresh boundaries while `PREDICT` serves, and the table
//! WAL recovers acknowledged appends after a crash at every write site
//! on the append path.

use corgipile::data::{DatasetSpec, Order};
use corgipile::db::{Database, DbError, QueryResult};
use corgipile::storage::{sites, FaultPlan, SimDevice, StorageError, Table, Tuple};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const DIM: usize = 28;

fn higgs(n: usize) -> Table {
    DatasetSpec::higgs_like(n)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8192)
        .build_table(1)
        .unwrap()
}

fn engine(n: usize) -> Arc<Database> {
    let db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
    db.register_table("higgs", higgs(n));
    db
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("corgi_ingest_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A deterministic drift batch: `n` rows whose features walk with `tag`.
fn batch(tag: usize, n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            let x = (tag * 1000 + i) as f32 * 0.001;
            Tuple::dense(0, vec![x; DIM], (i % 2) as f32)
        })
        .collect()
}

/// Fixed-plan training SQL: strategy and buffer pinned so the model bits
/// depend only on the tuple stream and the seed, never on what the
/// cost-based planner happens to estimate while writers race.
fn train_sql(model: &str, epochs: usize, seed: u64) -> String {
    format!(
        "SELECT * FROM higgs TRAIN BY svm CONTINUOUS WITH max_epoch_num = {epochs}, \
         seed = {seed}, strategy = 'corgipile', buffer_fraction = 0.2, model_name = {model}, \
         refresh = 1"
    )
}

fn pinned_train_sql(model: &str, epochs: usize, seed: u64) -> String {
    format!(
        "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = {epochs}, seed = {seed}, \
         strategy = 'corgipile', buffer_fraction = 0.2, model_name = {model}"
    )
}

fn train(db: &Arc<Database>, sql: &str) -> corgipile::db::DbTrainSummary {
    match db.connect().execute(sql).unwrap() {
        QueryResult::Train(t) => t,
        other => panic!("expected Train result, got {other:?}"),
    }
}

fn params(db: &Database, name: &str) -> Vec<f32> {
    db.catalog().model(name).unwrap().params.clone()
}

#[test]
fn inserted_rows_are_visible_to_the_next_train() {
    let db = engine(300);
    db.catalog().append_rows("higgs", batch(0, 50)).unwrap();

    // The SQL surface appends through the same writer.
    let mut vals: Vec<String> = (0..DIM).map(|i| format!("{}.25", i % 5)).collect();
    vals.push("1".into());
    let row = format!("({})", vals.join(", "));
    let mut s = db.connect();
    match s
        .execute(&format!("INSERT INTO higgs VALUES {row}, {row}"))
        .unwrap()
    {
        QueryResult::Insert {
            rows,
            version,
            total_tuples,
            ..
        } => {
            assert_eq!(rows, 2);
            assert_eq!(version, 3, "each statement publishes a new version");
            assert_eq!(total_tuples, 352);
        }
        other => panic!("expected Insert result, got {other:?}"),
    }

    // A subsequent TRAIN pins the latest snapshot and scans every row.
    let t = train(&db, &pinned_train_sql("m", 2, 7));
    assert_eq!(t.snapshot_version, 3);
    let scanned: u64 = t.op_stats.iter().map(|s| s.rows).max().unwrap();
    assert_eq!(scanned, 2 * 352, "both epochs must cover the appended rows");
}

#[test]
fn pinned_snapshot_train_is_bit_identical_under_a_concurrent_writer() {
    let db = engine(800);
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        // Bounded writer: at most 6 publishes, so the version the train
        // pins always stays within the catalog's retained window.
        thread::spawn(move || {
            for i in 0..6 {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                db.catalog().append_rows("higgs", batch(i, 25)).unwrap();
                thread::sleep(Duration::from_millis(1));
            }
        })
    };
    let live = train(&db, &pinned_train_sql("live", 3, 11));
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();

    // Cold rerun: a fresh engine over exactly the snapshot the live train
    // pinned must produce the same bits, whatever the writer interleaved.
    let snap = db
        .catalog()
        .snapshot_at("higgs", live.snapshot_version)
        .unwrap();
    let cold_db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
    cold_db.register_table("higgs", snap.table().as_ref().clone());
    train(&cold_db, &pinned_train_sql("cold", 3, 11));
    assert_eq!(
        params(&db, "live"),
        params(&cold_db, "cold"),
        "pinning must make the train independent of concurrent appends"
    );
}

#[test]
fn continuous_train_runs_alongside_inserts_and_serving() {
    let db = engine(600);
    // Seed a model so PREDICT traffic has something to serve from epoch 0.
    train(&db, &pinned_train_sql("serve", 1, 3));

    thread::scope(|sc| {
        let wdb = Arc::clone(&db);
        sc.spawn(move || {
            for i in 0..5 {
                wdb.catalog().append_rows("higgs", batch(i, 30)).unwrap();
                thread::sleep(Duration::from_millis(1));
            }
        });
        let rdb = Arc::clone(&db);
        sc.spawn(move || {
            let mut s = rdb.connect();
            for _ in 0..5 {
                match s.execute("PREDICT serve ON higgs").unwrap() {
                    QueryResult::Serve(p) => assert!(p.rows >= 600),
                    other => panic!("expected Serve result, got {other:?}"),
                }
            }
        });
        let tdb = Arc::clone(&db);
        sc.spawn(move || {
            let t = train(&tdb, &train_sql("cont", 4, 5));
            assert_eq!(t.epochs.len(), 4);
            assert!(
                t.snapshot_version >= 1,
                "continuous train reports its last pin"
            );
        });
    });

    assert!(db.catalog().model("cont").is_ok());
    let final_tuples = db.catalog().table("higgs").unwrap().num_tuples();
    assert_eq!(final_tuples, 600 + 5 * 30);
}

#[test]
fn continuous_train_reruns_bit_identically_over_the_same_drift() {
    // Deterministic drift: a refresh hook appends one batch at every
    // chunk boundary, so two runs see identical snapshot sequences.
    let run = |model: &str| -> Vec<f32> {
        let db = engine(400);
        let hook_db = Arc::clone(&db);
        let mut s = db.connect();
        s.set_refresh_hook(move |chunk| {
            hook_db
                .catalog()
                .append_rows("higgs", batch(chunk, 20))
                .unwrap();
        });
        match s.execute(&train_sql(model, 3, 13)).unwrap() {
            QueryResult::Train(t) => {
                assert_eq!(t.snapshot_version, 3, "two boundary appends re-pinned");
            }
            other => panic!("expected Train result, got {other:?}"),
        }
        params(&db, model)
    };
    assert_eq!(run("a"), run("b"));
}

#[test]
fn table_wal_recovers_acked_appends_at_every_crash_site() {
    // One cell per write site on the append path. `survives` says whether
    // the crashing statement's WAL frame was durable when the process
    // died: the statement either fully replays or fully vanishes —
    // never a prefix.
    enum Fault {
        Crash(&'static str),
        Torn(&'static str, usize),
    }
    let cells: &[(&str, Fault, bool)] = &[
        ("append_rows", Fault::Crash(sites::TABLE_APPEND_ROWS), false),
        ("wal_before", Fault::Crash(sites::WAL_BEFORE_APPEND), false),
        ("wal_torn", Fault::Torn(sites::WAL_BEFORE_APPEND, 7), false),
        (
            "wal_pre_fsync",
            Fault::Crash(sites::WAL_AFTER_APPEND_BEFORE_FSYNC),
            false,
        ),
        ("wal_post_fsync", Fault::Crash(sites::WAL_AFTER_FSYNC), true),
        // Batch B overflows the tail block, so the seal marker fires
        // mid-apply — after the row frame was already fsynced.
        ("seal_block", Fault::Crash(sites::TABLE_SEAL_BLOCK), true),
    ];
    let base = higgs(200);
    let acked = batch(0, 10);
    let lost_or_durable = batch(1, 100); // large enough to force a seal

    for (tag, fault, survives) in cells {
        let dir = store_dir(tag);
        {
            let db = Database::with_model_store(SimDevice::hdd_scaled(1000.0, 0), 0, &dir).unwrap();
            db.register_table("higgs", base.clone());
            db.catalog().append_rows("higgs", acked.clone()).unwrap();
            let plan = match fault {
                Fault::Crash(site) => FaultPlan::new(9).with_crash_point(site, 1),
                Fault::Torn(site, bytes) => FaultPlan::new(9).with_torn_write(site, *bytes),
            };
            db.catalog().set_append_faults(plan);
            let err = db
                .catalog()
                .append_rows("higgs", lost_or_durable.clone())
                .unwrap_err();
            assert!(
                matches!(err, DbError::Storage(StorageError::Crashed { .. })),
                "{tag}: expected an injected crash, got {err:?}"
            );
        } // engine dies with the crash

        // Restart: fresh engine over the same store, re-register the
        // original base, replay the table WAL.
        let db = Database::with_model_store(SimDevice::hdd_scaled(1000.0, 0), 0, &dir).unwrap();
        db.register_table("higgs", base.clone());
        let replayed = db.catalog().recover_table_wal("higgs").unwrap();
        let expect = if *survives { 110 } else { 10 };
        assert_eq!(replayed, expect, "{tag}: replayed row count");
        let recovered = db.catalog().table("higgs").unwrap();
        assert_eq!(recovered.num_tuples(), 200 + expect, "{tag}: total tuples");

        // The recovered tuple stream is byte-identical to a never-crashed
        // control that saw exactly the durable statements…
        let control_db = engine(200);
        control_db
            .catalog()
            .append_rows("higgs", acked.clone())
            .unwrap();
        if *survives {
            control_db
                .catalog()
                .append_rows("higgs", lost_or_durable.clone())
                .unwrap();
        }
        let control = control_db.catalog().table("higgs").unwrap();
        assert_eq!(
            recovered.all_tuples(),
            control.all_tuples(),
            "{tag}: recovered stream must match the control"
        );

        // …and therefore trains bit-identically to it.
        train(&db, &pinned_train_sql("after_crash", 2, 17));
        train(&control_db, &pinned_train_sql("control", 2, 17));
        assert_eq!(
            params(&db, "after_crash"),
            params(&control_db, "control"),
            "{tag}: training over the recovered table must match the control"
        );

        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn recovery_replay_is_idempotent() {
    let dir = store_dir("idempotent");
    let base = higgs(100);
    {
        let db = Database::with_model_store(SimDevice::hdd_scaled(1000.0, 0), 0, &dir).unwrap();
        db.register_table("higgs", base.clone());
        db.catalog().append_rows("higgs", batch(0, 7)).unwrap();
    }
    let db = Database::with_model_store(SimDevice::hdd_scaled(1000.0, 0), 0, &dir).unwrap();
    db.register_table("higgs", base.clone());
    assert_eq!(db.catalog().recover_table_wal("higgs").unwrap(), 7);
    let version = db.catalog().table_version("higgs").unwrap();
    // Replay is idempotent: a second recovery reports the same replayed
    // rows, publishes nothing new, and the tuple count is unchanged.
    assert_eq!(db.catalog().recover_table_wal("higgs").unwrap(), 7);
    assert_eq!(db.catalog().table_version("higgs").unwrap(), version);
    assert_eq!(db.catalog().table("higgs").unwrap().num_tuples(), 107);
    std::fs::remove_dir_all(&dir).ok();
}
