//! Integration: the SQL surface over the Volcano executor, end to end.

use corgipile::data::{DatasetSpec, Order};
use corgipile::db::{Database, DbError, QueryResult, Session};
use corgipile::storage::SimDevice;

fn session() -> Session {
    let table = DatasetSpec::susy_like(8_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(1)
        .unwrap();
    let cache = table.total_bytes() * 3;
    let s = Database::new(SimDevice::ssd_scaled(1280.0, cache)).connect();
    s.register_table("susy", table);
    s
}

#[test]
fn paper_query_template_works_end_to_end() {
    let mut s = session();
    // The exact query shape from §6: SELECT * FROM table TRAIN BY model WITH params.
    let r = s
        .execute(
            "SELECT * FROM susy TRAIN BY svm WITH learning_rate = 0.03, decay = 0.8, \
             max_epoch_num = 6, block_size = 8KB, buffer_fraction = 0.1, \
             strategy = 'corgipile', model_name = susy_svm;",
        )
        .unwrap();
    let summary = match r {
        QueryResult::Train(t) => t,
        _ => panic!("expected train summary"),
    };
    assert_eq!(summary.epochs.len(), 6);
    assert!(
        summary.final_train_metric > 0.70,
        "CorgiPile SVM on clustered susy should learn: {:.3}",
        summary.final_train_metric
    );
    // Per-epoch records monotone in simulated time.
    for w in summary.epochs.windows(2) {
        assert!(w[1].sim_seconds_end > w[0].sim_seconds_end);
    }

    // Inference against the stored model.
    match s.execute("SELECT * FROM susy PREDICT BY susy_svm").unwrap() {
        QueryResult::Predict {
            predictions,
            metric,
        } => {
            assert_eq!(predictions.len(), 8_000);
            assert!(metric > 0.70);
        }
        _ => panic!("expected predictions"),
    }
}

#[test]
fn sql_strategies_reproduce_the_accuracy_ordering() {
    let mut s = session();
    let mut acc = std::collections::BTreeMap::new();
    for strategy in ["corgipile", "once", "no"] {
        let r = s
            .execute(&format!(
                "SELECT * FROM susy TRAIN BY lr WITH learning_rate = 0.03, decay = 0.8, \
                 max_epoch_num = 6, strategy = '{strategy}', model_name = m_{strategy}"
            ))
            .unwrap();
        match r {
            QueryResult::Train(t) => {
                acc.insert(strategy, t.final_train_metric);
            }
            _ => unreachable!(),
        }
    }
    assert!((acc["corgipile"] - acc["once"]).abs() < 0.06);
    assert!(acc["corgipile"] > acc["no"] + 0.10);
}

#[test]
fn once_pays_setup_corgipile_does_not() {
    let mut s = session();
    let total = |strategy: &str, s: &mut Session| match s
        .execute(&format!(
            "SELECT * FROM susy TRAIN BY svm WITH max_epoch_num = 3, \
                 strategy = '{strategy}', model_name = t_{strategy}"
        ))
        .unwrap()
    {
        QueryResult::Train(t) => (t.setup_seconds, t.total_seconds()),
        _ => unreachable!(),
    };
    let (corgi_setup, corgi_total) = total("corgipile", &mut s);
    let (once_setup, once_total) = total("once", &mut s);
    assert_eq!(corgi_setup, 0.0);
    assert!(once_setup > 0.0);
    assert!(corgi_total < once_total);
}

#[test]
fn explain_analyze_reports_per_operator_actuals() {
    let mut s = session();
    let r = s
        .execute(
            "EXPLAIN ANALYZE SELECT * FROM susy TRAIN BY svm WITH learning_rate = 0.03, \
             max_epoch_num = 3, buffer_fraction = 0.1, strategy = 'corgipile', \
             model_name = ea_svm",
        )
        .unwrap();
    let lines = match r {
        QueryResult::Plan(lines) => lines,
        _ => panic!("expected plan output"),
    };
    let text = lines.join("\n");
    // Root-first operator tree with actual row counts and loop counts.
    assert!(
        lines[0].starts_with("SGD (actual rows=24000 loops=3"),
        "root line: {}",
        lines[0]
    );
    // The default plan fuses the whole chain into one pipeline node with
    // per-batch actuals.
    assert!(
        text.contains("-> Fused Pipeline (scan→shuffle→sgd)"),
        "plan: {text}"
    );
    assert!(text.contains("batches="), "batch actuals: {text}");
    assert!(text.contains("fills="), "buffer fill actuals: {text}");
    assert!(text.contains("cache_hit_rate="), "scan actuals: {text}");
    assert!(text.contains("retries=0"), "retry actuals: {text}");
    // I/O summary and training summary lines.
    assert!(
        lines.iter().any(|l| l.starts_with("I/O:")),
        "io line: {text}"
    );
    assert!(
        lines.iter().any(|l| l.starts_with("Training: epochs=3")),
        "training line: {text}"
    );
    // The query actually ran: the model is queryable afterwards.
    match s.execute("SELECT * FROM susy PREDICT BY ea_svm").unwrap() {
        QueryResult::Predict { predictions, .. } => assert_eq!(predictions.len(), 8_000),
        _ => panic!("expected predictions"),
    }

    // fuse = 0 restores the interpreted operator tree, node by node.
    let r = s
        .execute(
            "EXPLAIN ANALYZE SELECT * FROM susy TRAIN BY svm WITH learning_rate = 0.03, \
             max_epoch_num = 3, buffer_fraction = 0.1, strategy = 'corgipile', \
             fuse = 0, model_name = ea_svm0",
        )
        .unwrap();
    let lines = match r {
        QueryResult::Plan(lines) => lines,
        _ => panic!("expected plan output"),
    };
    let text = lines.join("\n");
    assert!(text.contains("TupleShuffle"), "plan: {text}");
    assert!(text.contains("BlockShuffle"), "plan: {text}");
    assert!(!text.contains("Fused Pipeline"), "plan: {text}");
}

#[test]
fn show_stats_exposes_telemetry_counters() {
    let mut s = session();
    s.execute(
        "SELECT * FROM susy TRAIN BY lr WITH max_epoch_num = 2, strategy = 'corgipile', \
         model_name = stats_lr",
    )
    .unwrap();
    let lines = match s.execute("SHOW STATS").unwrap() {
        QueryResult::Plan(lines) => lines,
        _ => panic!("expected stats output"),
    };
    let text = lines.join("\n");
    assert!(
        text.contains("counter storage.device."),
        "device counters: {text}"
    );
    assert!(
        text.contains("counter db.sgd.gradient_steps"),
        "sgd counter: {text}"
    );
    assert!(
        text.contains("histogram db.tuple_shuffle.fill"),
        "fill spans: {text}"
    );
    assert!(text.contains("events "), "event summary: {text}");
}

#[test]
fn sql_errors_surface_cleanly() {
    let mut s = session();
    assert!(matches!(
        s.execute("SELECT * FROM missing TRAIN BY svm"),
        Err(DbError::UnknownTable(_))
    ));
    assert!(matches!(
        s.execute("DROP TABLE susy"),
        Err(DbError::Parse(_))
    ));
    assert!(matches!(
        s.execute("SELECT * FROM susy TRAIN BY svm WITH learning_rate = fast"),
        Err(DbError::BadParam(_))
    ));
}

#[test]
fn regression_model_via_sql_reports_r2() {
    let table = DatasetSpec::msd_like(4_000)
        .with_block_bytes(8 << 10)
        .build_table(2)
        .unwrap();
    let mut s = Database::new(SimDevice::ssd_scaled(1280.0, table.total_bytes() * 3)).connect();
    s.register_table("songs", table);
    let r = s
        .execute(
            "SELECT * FROM songs TRAIN BY linreg WITH learning_rate = 0.01, \
             max_epoch_num = 6, model_name = year_model",
        )
        .unwrap();
    match r {
        QueryResult::Train(t) => {
            assert!(t.final_train_metric > 0.9, "R² {:.3}", t.final_train_metric);
        }
        _ => unreachable!(),
    }
}

#[test]
fn where_pushdown_end_to_end() {
    let mut s = session();
    // Train on the first quarter of the table only; the predicate is fused
    // into the block scan, below the shuffle buffer.
    let run = |s: &mut Session, pushdown: usize| {
        let r = s
            .execute(&format!(
                "SELECT * FROM susy WHERE id < 2000 TRAIN BY svm WITH \
                 learning_rate = 0.03, max_epoch_num = 3, pushdown = {pushdown}, \
                 model_name = m_pd{pushdown}"
            ))
            .unwrap();
        match r {
            QueryResult::Train(t) => t,
            _ => panic!("expected train summary"),
        }
    };
    let pushed = run(&mut s, 1);
    let post = run(&mut s, 0);
    // Equivalence: same models bit for bit, same rows at the SGD root.
    assert_eq!(
        s.catalog().model("m_pd1").unwrap().params,
        s.catalog().model("m_pd0").unwrap().params,
    );
    assert_eq!(pushed.op_stats[0].rows, 3 * 2000);
    assert_eq!(post.op_stats[0].rows, 3 * 2000);
    // Economy: the pushdown plan buffers 4x fewer tuples. (The fused
    // default folds the chain into one stats node, so sum across nodes.)
    let buffered = |t: &corgipile::db::DbTrainSummary| {
        t.op_stats
            .iter()
            .map(|o| o.buffered_tuples)
            .sum::<u64>()
            .max(1)
    };
    assert!(buffered(&post) >= 3 * buffered(&pushed));

    // EXPLAIN (fused default) folds the predicate into the pipeline node.
    let lines = match s
        .execute("EXPLAIN SELECT f0, f2 FROM susy WHERE f0 > 0 OR label = 1 TRAIN BY svm")
        .unwrap()
    {
        QueryResult::Plan(lines) => lines,
        _ => panic!("expected a plan"),
    };
    assert!(
        lines
            .iter()
            .any(|l| l.contains("-> Fused Pipeline (scan→filter→project→shuffle→sgd)")),
        "fused node: {lines:?}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.trim_start().starts_with("Filter: (f0 > 0 OR label = 1)")),
        "fused filter sub-line: {lines:?}"
    );

    // With fuse = 0, the predicate sits on the interpreted scan node, not
    // a Filter node.
    let lines = match s
        .execute(
            "EXPLAIN SELECT f0, f2 FROM susy WHERE f0 > 0 OR label = 1 TRAIN BY svm \
             WITH fuse = 0",
        )
        .unwrap()
    {
        QueryResult::Plan(lines) => lines,
        _ => panic!("expected a plan"),
    };
    let scan = lines
        .iter()
        .position(|l| l.contains("BlockShuffle (random"))
        .expect("scan node");
    assert!(lines[scan + 1]
        .trim_start()
        .starts_with("Output: f0, f2, label"));
    assert!(lines[scan + 2]
        .trim_start()
        .starts_with("Filter: (f0 > 0 OR label = 1)"));
    assert!(!lines.iter().any(|l| l.contains("-> Filter")));

    // EXPLAIN ANALYZE reports PostgreSQL-style "Rows Removed by Filter".
    let lines = match s
        .execute(
            "EXPLAIN ANALYZE SELECT * FROM susy WHERE id < 2000 TRAIN BY svm \
             WITH max_epoch_num = 2",
        )
        .unwrap()
    {
        QueryResult::Plan(lines) => lines,
        _ => panic!("expected plan lines"),
    };
    assert!(
        lines
            .iter()
            .any(|l| l.trim_start() == "Rows Removed by Filter: 12000"),
        "rows removed: {lines:?}"
    );

    // Unknown columns fail at planning time with a structured error.
    assert!(matches!(
        s.execute("EXPLAIN SELECT * FROM susy WHERE f99 > 0 TRAIN BY svm"),
        Err(DbError::UnknownColumn(_))
    ));
}
