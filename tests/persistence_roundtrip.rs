//! Integration: the persistence path end to end — generate → export to
//! LIBSVM → import → save heap file → open file-backed → train through the
//! SQL engine with shared_buffers → export/reload the model.

use corgipile::data::libsvm::{load_libsvm_table, write_libsvm_file};
use corgipile::data::{DatasetSpec, Order};
use corgipile::db::{Database, QueryResult, StoredModel};
use corgipile::ml::accuracy;
use corgipile::storage::{load_table, save_table, FileTable, SimDevice, TableConfig};
use std::sync::Arc;

fn tempdir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "corgi_it_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn full_persistence_pipeline() {
    let dir = tempdir();
    let ds = DatasetSpec::susy_like(4_000)
        .with_order(Order::ClusteredByLabel)
        .build(77);

    // Export → import through the LIBSVM text format.
    let libsvm = dir.join("susy.libsvm");
    write_libsvm_file(&libsvm, &ds.train).unwrap();
    let table = load_libsvm_table(
        &libsvm,
        TableConfig::new("susy", 1).with_block_bytes(8 << 10),
        Some(18),
        0.5,
    )
    .unwrap();
    assert_eq!(table.num_tuples(), 4_000);

    // Heap-file round trip.
    let heap = dir.join("susy.tbl");
    save_table(&table, &heap).unwrap();
    let reloaded = load_table(&heap).unwrap();
    assert_eq!(reloaded.all_tuples(), table.all_tuples());

    // File-backed block access agrees with memory.
    let ft = Arc::new(FileTable::open(&heap).unwrap());
    assert_eq!(ft.num_blocks(), table.num_blocks());
    for b in [0usize, ft.num_blocks() / 2, ft.num_blocks() - 1] {
        assert_eq!(ft.read_block(b).unwrap(), table.block_tuples(b).unwrap());
    }

    // Train via SQL over the reloaded table with a buffer pool.
    let mut s = Database::new(SimDevice::hdd_scaled(1280.0, 0)).connect();
    s.register_table("susy", reloaded);
    let summary = match s
        .execute(
            "SELECT * FROM susy TRAIN BY lr WITH learning_rate = 0.03, decay = 0.8, \
             max_epoch_num = 5, shared_buffers = 32MB, model_name = susy_lr",
        )
        .unwrap()
    {
        QueryResult::Train(t) => t,
        _ => panic!("expected train result"),
    };
    assert!(
        summary.final_train_metric > 0.7,
        "acc {}",
        summary.final_train_metric
    );
    // Warm epochs are pool-served: their loading cost collapses.
    let cold = summary.epochs[0].io_seconds;
    let warm = summary.epochs[2].io_seconds;
    assert!(warm < cold / 5.0, "warm {warm} vs cold {cold}");

    // Model blob round trip into a fresh process-equivalent session.
    let blob = dir.join("susy_lr.model");
    s.catalog().model("susy_lr").unwrap().save(&blob).unwrap();
    let restored = StoredModel::load(&blob).unwrap().instantiate();
    let acc = accuracy(restored.as_ref(), &ds.test);
    assert!(acc > 0.7, "restored model accuracy {acc}");

    std::fs::remove_dir_all(dir).ok();
}
