//! Integration: the §4.2 theory against measured training behaviour.

use corgipile::core::{
    block_variance_factor, CorgiFactors, CorgiPileConfig, Theorem1Bound, Trainer, TrainerConfig,
};
use corgipile::data::{DatasetSpec, Order};
use corgipile::ml::{build_model, ModelKind, OptimizerKind};
use corgipile::shuffle::{BlockSampleMode, StrategyKind};
use corgipile::storage::SimDevice;

fn clustered_table(n: usize) -> corgipile::storage::Table {
    DatasetSpec::higgs_like(n)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(31)
        .unwrap()
}

#[test]
fn h_d_orders_storage_layouts_by_clusteredness() {
    // h_D ≈ 1 on shuffled storage, ≫ 1 on clustered storage — the factor
    // that multiplies CorgiPile's leading convergence term.
    let mut model = build_model(&ModelKind::LogisticRegression, 28, 1);
    for (i, p) in model.params_mut().iter_mut().enumerate() {
        *p = 0.2 * ((i as f32 * 0.37).sin());
    }
    let shuffled = DatasetSpec::higgs_like(6_000)
        .with_order(Order::Shuffled)
        .with_block_bytes(8 << 10)
        .build_table(32)
        .unwrap();
    let clustered = clustered_table(6_000);
    let s_shuffled = block_variance_factor(&shuffled, model.as_ref());
    let s_clustered = block_variance_factor(&clustered, model.as_ref());
    assert!(s_shuffled.h_d < 3.0, "shuffled h_D {}", s_shuffled.h_d);
    assert!(
        s_clustered.h_d > 4.0 * s_shuffled.h_d,
        "clustered h_D {} vs shuffled {}",
        s_clustered.h_d,
        s_shuffled.h_d
    );
}

#[test]
fn theorem1_bound_predicts_buffer_size_benefit() {
    // The leading term (1−α)·h_D·σ²/T shrinks as the buffer grows; the
    // measured SampleN-mode convergence must improve the same way.
    let table = clustered_table(8_000);
    let model = {
        let mut m = build_model(&ModelKind::LogisticRegression, 28, 1);
        for (i, p) in m.params_mut().iter_mut().enumerate() {
            *p = 0.1 * ((i as f32 * 0.71).cos());
        }
        m
    };
    let stats = block_variance_factor(&table, model.as_ref());
    let n_small = (stats.big_n / 20).max(2);
    let n_large = stats.big_n / 2;
    let b_small = Theorem1Bound::new(&stats, n_small);
    let b_large = Theorem1Bound::new(&stats, n_large);
    let t = 1e6;
    assert!(
        b_large.at(t) < b_small.at(t),
        "bound must improve with buffer size: {} !< {}",
        b_large.at(t),
        b_small.at(t)
    );
    // α spans (0, 1) and the factors stay consistent with Theorem 1.
    let f = CorgiFactors::new(n_small, stats.big_n, stats.b);
    assert!(f.alpha > 0.0 && f.alpha < 1.0);
}

#[test]
fn sample_n_mode_convergence_improves_with_buffer_like_the_bound() {
    // Algorithm 1 (SampleN): each epoch trains on n random blocks only.
    // Larger n ⇒ more i.i.d.-like epoch ⇒ better loss at equal tuple
    // budget — the empirical counterpart of the (1−α) factor.
    let ds = DatasetSpec::higgs_like(8_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build(33);
    let table = ds.to_table(33).unwrap();
    let run = |frac: f64, epochs: usize| {
        let cfg = TrainerConfig::new(ModelKind::LogisticRegression, epochs)
            .with_strategy(StrategyKind::CorgiPile)
            .with_optimizer(OptimizerKind::Sgd {
                lr0: 0.02,
                decay: 1.0,
            })
            .with_corgipile(
                CorgiPileConfig::default()
                    .with_buffer_fraction(frac)
                    .with_sample_mode(BlockSampleMode::SampleN),
            );
        let mut dev = SimDevice::in_memory();
        let r = Trainer::new(cfg)
            .train_with_test(&table, &ds.test, &mut dev, 9)
            .unwrap();
        let vals: Vec<f64> = r
            .epochs
            .iter()
            .rev()
            .take(3)
            .filter_map(|e| e.test_metric)
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    // Equal tuple budget: 40 epochs × 2% == 8 epochs × 10%. With a constant
    // learning rate (no annealing confound), the larger buffer — smaller
    // (1−α)·h_D leading term — must not do worse than the smaller one.
    let small = run(0.02, 40);
    let large = run(0.10, 8);
    assert!(
        large >= small - 0.03,
        "larger buffers should not hurt at equal budget: 10% {large:.3} vs 2% {small:.3}"
    );
}

#[test]
fn full_buffer_degenerates_to_full_shuffle() {
    // α = 1 (n = N): the leading term vanishes and CorgiPile *is*
    // full-shuffle SGD; measured accuracy must match Shuffle Once tightly.
    let ds = DatasetSpec::higgs_like(6_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build(34);
    let table = ds.to_table(34).unwrap();
    let run = |strategy: StrategyKind, frac: f64| {
        let cfg = TrainerConfig::new(ModelKind::LogisticRegression, 5)
            .with_strategy(strategy)
            .with_optimizer(OptimizerKind::Sgd {
                lr0: 0.03,
                decay: 0.8,
            })
            .with_corgipile(CorgiPileConfig::default().with_buffer_fraction(frac));
        let mut dev = SimDevice::in_memory();
        let r = Trainer::new(cfg)
            .train_with_test(&table, &ds.test, &mut dev, 11)
            .unwrap();
        let vals: Vec<f64> = r
            .epochs
            .iter()
            .rev()
            .take(3)
            .filter_map(|e| e.test_metric)
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let so = run(StrategyKind::ShuffleOnce, 1.0);
    let cp_full = run(StrategyKind::CorgiPile, 1.0);
    assert!(
        (so - cp_full).abs() < 0.04,
        "α=1 CorgiPile {cp_full:.3} should equal full shuffle {so:.3} up to seed noise"
    );
}
