//! Crash matrix: kill a durable training run at every injected write
//! site, recover, resume, and require the final model to be bit-identical
//! to an uninterrupted run.
//!
//! This is the durability contract of the WAL-backed model store: a
//! `WITH durable = 1` training query appends an epoch-granular checkpoint
//! to the `CORGIWL1` log (fsynced before the epoch is acknowledged), so a
//! process killed at *any* point — before an append, with the frame torn,
//! with the frame unsynced in the page cache, after the fsync, mid-rename
//! of the compaction snapshot, or between the snapshot and the log
//! truncation — recovers to a consistent prefix of epochs and resumes by
//! replay to the exact same final parameters. No checkpoint knobs, no
//! non-determinism.
//!
//! The matrix runs every reachable crash site × {pre-fsync crash,
//! post-fsync crash, torn write}, plus a concurrent-sessions variant
//! where the killed session shares the engine (and the WAL) with a
//! surviving one. (`save_table.mid_rename` is not on the durable-training
//! path; its recovery is proven by the storage-layer persist tests.)

use corgipile::data::{DatasetSpec, Order};
use corgipile::db::{Database, DbError, ModelStoreOptions, QueryResult};
use corgipile::storage::{sites, FaultPlan, SimDevice, StorageError, Table};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const EPOCHS: usize = 4;

fn higgs(n: usize) -> Table {
    DatasetSpec::higgs_like(n)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8192)
        .build_table(1)
        .unwrap()
}

fn train_sql(name: &str, seed: usize) -> String {
    format!(
        "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.05, \
         max_epoch_num = {EPOCHS}, seed = {seed}, model_name = {name}, durable = 1"
    )
}

fn store_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "corgi_crashmx_{}_{}",
        tag.replace(['.', '@'], "_"),
        std::process::id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn engine(table: &Table, dir: &Path, opts: ModelStoreOptions) -> Arc<Database> {
    let db = Database::with_model_store_opts(SimDevice::hdd_scaled(1000.0, 0), 0, dir, opts)
        .expect("open engine with model store");
    db.register_table("higgs", table.clone());
    db
}

/// The uninterrupted run: fresh store, no faults, straight to completion.
fn reference_params(table: &Table, name: &str, seed: usize) -> Vec<f32> {
    let dir = store_dir(&format!("ref_{name}_{seed}"));
    let db = engine(table, &dir, ModelStoreOptions::default());
    db.connect().execute(&train_sql(name, seed)).unwrap();
    let params = db.catalog().model(name).unwrap().params.clone();
    std::fs::remove_dir_all(&dir).ok();
    params
}

/// One matrix cell: kill the run under `plan`, then recover on a clean
/// engine over the same directory and re-issue the *same* SQL.
fn kill_recover_resume(label: &str, table: &Table, want: &[f32], opts: ModelStoreOptions) {
    let dir = store_dir(label);
    {
        let db = engine(table, &dir, opts.clone());
        let err = db
            .connect()
            .execute(&train_sql("m", 7))
            .expect_err(&format!("{label}: the injected fault must kill the run"));
        match err {
            DbError::Storage(StorageError::Crashed { site }) => {
                assert!(
                    sites::crash_sites().contains(&site.as_str()),
                    "{label}: crashed at unregistered site {site}"
                );
            }
            other => panic!("{label}: expected a simulated crash, got {other:?}"),
        }
        // The kill must not have published a finished model.
        assert!(db.catalog().model("m").is_err(), "{label}");
    }
    // Recovery: a clean process opens the same store and re-issues the
    // same query — auto-resume picks up from the last durable epoch.
    let clean = ModelStoreOptions {
        faults: None,
        ..opts
    };
    let db = engine(table, &dir, clean);
    db.connect().execute(&train_sql("m", 7)).unwrap();
    let got = db.catalog().model("m").unwrap().params.clone();
    assert_eq!(
        got, want,
        "{label}: recovered+resumed model must be bit-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_matrix_every_site_recovers_bit_identical() {
    let table = higgs(1500);
    let want = reference_params(&table, "m", 7);
    // Tiny compaction threshold so snapshot sites fire during the run.
    let compacting = |faults: FaultPlan| ModelStoreOptions {
        compact_threshold_bytes: 64,
        faults: Some(faults),
        ..Default::default()
    };
    let plain = |faults: FaultPlan| ModelStoreOptions {
        faults: Some(faults),
        ..Default::default()
    };
    let cases: Vec<(&str, ModelStoreOptions)> = vec![
        // WAL append sites: pre-append, pre-fsync, post-fsync crashes.
        (
            "crash@wal.before_append#1",
            plain(FaultPlan::new(7).with_crash_point(sites::WAL_BEFORE_APPEND, 1)),
        ),
        (
            "crash@wal.before_append#3",
            plain(FaultPlan::new(7).with_crash_point(sites::WAL_BEFORE_APPEND, 3)),
        ),
        (
            "crash@wal.after_append_before_fsync#2",
            plain(FaultPlan::new(7).with_crash_point(sites::WAL_AFTER_APPEND_BEFORE_FSYNC, 2)),
        ),
        (
            "crash@wal.after_fsync#1",
            plain(FaultPlan::new(7).with_crash_point(sites::WAL_AFTER_FSYNC, 1)),
        ),
        (
            "crash@wal.after_fsync#3",
            plain(FaultPlan::new(7).with_crash_point(sites::WAL_AFTER_FSYNC, 3)),
        ),
        // Torn writes: a prefix of the frame reaches the medium, then death.
        (
            "torn@wal.before_append",
            plain(FaultPlan::new(7).with_torn_write(sites::WAL_BEFORE_APPEND, 5)),
        ),
        (
            "torn@wal.after_append_before_fsync",
            plain(FaultPlan::new(7).with_torn_write(sites::WAL_AFTER_APPEND_BEFORE_FSYNC, 7)),
        ),
        // Compaction sites: mid-rename of the snapshot, and the gap between
        // a durable snapshot and the log truncation.
        (
            "crash@atomic_write.mid_rename#1",
            compacting(FaultPlan::new(7).with_crash_point(sites::ATOMIC_WRITE_MID_RENAME, 1)),
        ),
        (
            "torn@atomic_write.mid_rename",
            compacting(FaultPlan::new(7).with_torn_write(sites::ATOMIC_WRITE_MID_RENAME, 3)),
        ),
        (
            "crash@model_store.post_snapshot#1",
            compacting(FaultPlan::new(7).with_crash_point(sites::MODEL_STORE_POST_SNAPSHOT, 1)),
        ),
        (
            "crash@model_store.post_snapshot#2",
            compacting(FaultPlan::new(7).with_crash_point(sites::MODEL_STORE_POST_SNAPSHOT, 2)),
        ),
    ];
    for (label, opts) in cases {
        kill_recover_resume(label, &table, &want, opts);
    }
}

#[test]
fn repeated_kills_converge_to_the_same_model() {
    // Kill every restart on its *first* post-fsync append: each attempt
    // makes exactly one more epoch durable before dying, so progress is
    // strictly monotone and the final clean run trains only the last epoch.
    let table = higgs(1500);
    let want = reference_params(&table, "m", 7);
    let dir = store_dir("repeated_kills");
    for attempt in 1..=3u64 {
        let opts = ModelStoreOptions {
            faults: Some(FaultPlan::new(7).with_crash_point(sites::WAL_AFTER_FSYNC, 1)),
            ..Default::default()
        };
        let db = engine(&table, &dir, opts);
        // Recovery sees exactly the epochs made durable by earlier attempts.
        let durable = db.model_store().unwrap().latest("m").map(|r| r.epoch);
        assert_eq!(durable, (attempt > 1).then_some(attempt as u32 - 1));
        let r = db.connect().execute(&train_sql("m", 7));
        assert!(
            matches!(r, Err(DbError::Storage(StorageError::Crashed { .. }))),
            "kill {attempt} must crash, got {r:?}"
        );
    }
    let db = engine(&table, &dir, ModelStoreOptions::default());
    assert_eq!(db.model_store().unwrap().latest("m").unwrap().epoch, 3);
    let r = db.connect().execute(&train_sql("m", 7)).unwrap();
    match r {
        QueryResult::Train(t) => assert_eq!(t.epochs.len(), 1, "only the last epoch remains"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(db.catalog().model("m").unwrap().params, want);
    let rec = db.model_store().unwrap().latest("m").unwrap();
    assert_eq!((rec.version, rec.epoch), (1, EPOCHS as u32));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_under_concurrent_sessions_recovers_both_models() {
    // Two sessions train durable models over ONE engine and ONE WAL; a
    // crash point on the shared store kills whichever session's append
    // visits it. The survivor's model must be untouched, and recovery must
    // resume the victim to bit-identity.
    let table = higgs(1500);
    let want_a = reference_params(&table, "a", 3);
    let want_b = reference_params(&table, "b", 5);

    let dir = store_dir("concurrent");
    let opts = ModelStoreOptions {
        faults: Some(FaultPlan::new(7).with_crash_point(sites::WAL_AFTER_APPEND_BEFORE_FSYNC, 5)),
        ..Default::default()
    };
    let mut crashes = 0usize;
    {
        let db = engine(&table, &dir, opts);
        let results: Vec<Result<(), DbError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = [("a", 3usize), ("b", 5usize)]
                .into_iter()
                .map(|(name, seed)| {
                    let db = Arc::clone(&db);
                    scope.spawn(move || db.connect().execute(&train_sql(name, seed)).map(|_| ()))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in results {
            match r {
                Ok(()) => {}
                Err(DbError::Storage(StorageError::Crashed { .. })) => crashes += 1,
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert_eq!(crashes, 1, "exactly one session hits the 5th append");
    }
    // Clean recovery + re-issue of both queries (the finished one retrains
    // a fresh version; the killed one resumes).
    let db = engine(&table, &dir, ModelStoreOptions::default());
    let mut s = db.connect();
    s.execute(&train_sql("a", 3)).unwrap();
    s.execute(&train_sql("b", 5)).unwrap();
    assert_eq!(db.catalog().model("a").unwrap().params, want_a);
    assert_eq!(db.catalog().model("b").unwrap().params, want_b);
    std::fs::remove_dir_all(&dir).ok();
}
